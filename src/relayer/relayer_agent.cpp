#include "relayer/relayer_agent.hpp"

#include <algorithm>
#include <memory>
#include <set>

namespace bmg::relayer {

namespace {
/// Folds a public key into the pipeline seed so co-deployed relayers
/// draw independent backoff-jitter streams deterministically.
std::uint64_t mix_seed(std::uint64_t seed, const crypto::PublicKey& key) {
  std::uint64_t h = seed;
  for (unsigned char b : key.raw()) h = (h ^ b) * 0x1000'0000'01B3ull;
  return h;
}
}  // namespace

RelayerAgent::RelayerAgent(sim::Simulation& sim, host::Chain& host,
                           guest::GuestContract& contract,
                           counterparty::CounterpartyChain& cp,
                           ibc::ClientId guest_client_on_cp, crypto::PublicKey payer,
                           RelayerConfig cfg)
    : sim_(sim),
      host_(host),
      contract_(contract),
      cp_(cp),
      guest_client_on_cp_(std::move(guest_client_on_cp)),
      payer_(std::move(payer)),
      cfg_(cfg),
      pipeline_(sim, host, Rng(mix_seed(cfg.pipeline_seed, payer_)), cfg.pipeline) {
  timer_owner_ = sim_.register_agent();
}

void RelayerAgent::start() {
  // Subscriptions are append-only (they live as long as the chains),
  // so they are registered once and gated on running_: a crashed
  // process simply misses the events fired while it is down.
  //
  // On a fork-aware host the guest→counterparty direction consumes
  // FinalisedBlock at *rooted* commitment regardless of the configured
  // pipeline level: the counterparty never rolls back, so exporting
  // guest state that a host reorg could still retract would break
  // conservation permanently.
  host::SubscribeOptions finalised_opts;
  finalised_opts.level = host_.fork_mode() ? host::Commitment::kRooted
                                           : host::Commitment::kProcessed;
  host_.subscribe(
      guest::kProgramName,
      [this](const host::Event& ev) {
        if (!running_) return;
        if (ev.name != guest::GuestContract::kEvFinalisedBlock) return;
        Decoder d(ev.data);
        const ibc::Height height = d.u64();
        sim_.after_cancellable(
            cfg_.poll_latency_s, [this, height] { on_guest_block_finalised(height); },
            timer_owner_);
      },
      finalised_opts);
  // Counterparty-sent packets enter the relay queue at the next cp
  // block (when they become provable).
  cp_.ibc().set_packet_listener([this](const ibc::Packet& packet) {
    if (!running_) return;
    cp_outgoing_.emplace_back(packet, cp_.height() + 1);
  });
  cp_.on_new_block([this](ibc::Height height) {
    if (!running_) return;
    sim_.after_cancellable(
        cfg_.poll_latency_s, [this, height] { on_cp_block(height); }, timer_owner_);
  });
}

// --- crash-restart ------------------------------------------------------------

void RelayerAgent::crash() {
  if (!running_) return;
  running_ = false;
  ++crash_count_;
  // Every in-memory structure is ephemeral: timers die with the
  // process, in-flight pipeline sequences never call back, queues drop.
  sim_.cancel_agent(timer_owner_);
  pipeline_.reset();
  cp_outgoing_.clear();
  cp_acks_.clear();
  guest_acks_pending_.clear();
  queued_updates_.clear();
  guest_update_in_flight_ = false;
  next_buffer_id_ = 1;
  pipeline_.errors().push(RelayError{RelayErrorKind::kCrashRestart,
                                     "agent:" + cfg_.name, "process killed",
                                     sim_.now(), 0});
}

void RelayerAgent::restart() {
  if (running_) return;
  running_ = true;
  pipeline_.errors().push(RelayError{RelayErrorKind::kCrashRestart,
                                     "agent:" + cfg_.name, "process restarted",
                                     sim_.now(), 0});
  resync();
}

trie::Proof RelayerAgent::cp_proof(ibc::Height h, ByteView key) const {
  const trie::TrieSnapshot snap = cp_.snapshot_at(h);
  if (!snap.valid())
    throw ibc::IbcError("relayer: no cp snapshot at height " + std::to_string(h));
  return snap.prove(key);
}

ibc::Height RelayerAgent::cp_ready_height(ByteView key) const {
  const ibc::Height h = cp_.height();
  if (h == 0) return 1;
  try {
    const trie::Proof proof = cp_proof(h, key);
    if (trie::verify_proof(cp_.header_at(h).header.state_root, key, proof).kind ==
        trie::VerifyOutcome::Kind::kFound)
      return h;
  } catch (const std::exception&) {
  }
  return h + 1;
}

void RelayerAgent::redeliver_guest_packet_to_cp(const ibc::Packet& packet,
                                                ibc::Height gh) {
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment, packet.source_port,
                                   packet.source_channel, packet.sequence);
  // One snapshot handle serves both the provability check here and the
  // delivery proof in the deferred callback (the snapshot pins its
  // pages, so the proof stays byte-identical even after pruning).
  const trie::TrieSnapshot snap = contract_.snapshot_at(gh);
  bool provable = false;
  try {
    const trie::Proof proof = snap.prove(key);
    provable = trie::verify_proof(contract_.block_at(gh).header.state_root, key,
                                  proof).kind == trie::VerifyOutcome::Kind::kFound;
  } catch (const std::exception&) {
  }
  // Not yet committed in a finalised block: the normal FinalisedBlock
  // path will relay it once the block containing it finalises.
  if (!provable) return;
  push_guest_header_to_cp(gh, [this, gh, packet, snap] {
    const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment,
                                     packet.source_port, packet.source_channel,
                                     packet.sequence);
    try {
      const trie::Proof proof = snap.prove(key);
      const ibc::Acknowledgement ack =
          cp_.ibc().recv_packet(packet, gh, proof, cp_.height(), cp_.now());
      ++to_cp_packets_;
      cp_acks_.emplace_back(packet, ack, cp_.height() + 1);
    } catch (const std::exception& e) {
      note_cp_reject("resync-recv#" + std::to_string(packet.sequence), e.what());
    }
  });
}

void RelayerAgent::resync() {
  // Durable state lives on-chain; rebuild the in-memory queues from it
  // (the "anyone can resume relaying" property IBC's delivery
  // guarantees rest on).

  // 1. Skip past any staging buffers a previous life left behind so
  //    fresh uploads never collide with half-uploaded ones.
  for (const std::uint64_t id : contract_.staging_buffers_of(payer_))
    next_buffer_id_ = std::max(next_buffer_id_, id + 1);

  // 2. Counterparty -> guest: every unresolved cp commitment is either
  //    undelivered (relay the packet) or delivered but not yet acked
  //    back (relay the ack).
  for (const auto& [port, chan] : cp_.ibc().channels()) {
    for (const std::uint64_t seq : cp_.ibc().pending_send_sequences(port, chan)) {
      const ibc::Packet* p = cp_.ibc().sent_packet(port, chan, seq);
      if (p == nullptr) continue;
      if (contract_.ibc().packet_received(p->dest_port, p->dest_channel, seq)) {
        guest_acks_pending_.push_back(*p);
      } else {
        const auto key =
            ibc::packet_key(ibc::KeyKind::kPacketCommitment, port, chan, seq);
        cp_outgoing_.emplace_back(*p, cp_ready_height(key));
      }
    }
  }

  // 3. Guest -> counterparty: unresolved guest commitments whose
  //    packets never reached the cp are re-delivered against the latest
  //    finalised block; delivered ones re-enter the ack queue.
  const ibc::Height gh = contract_.last_finalised_height();
  for (const auto& [port, chan] : contract_.ibc().channels()) {
    for (const std::uint64_t seq : contract_.ibc().pending_send_sequences(port, chan)) {
      const ibc::Packet* p = contract_.ibc().sent_packet(port, chan, seq);
      if (p == nullptr) continue;
      if (cp_.ibc().packet_received(p->dest_port, p->dest_channel, seq)) {
        if (const auto ack = cp_.ibc().ack_for(p->dest_port, p->dest_channel, seq)) {
          const auto key =
              ibc::packet_key(ibc::KeyKind::kPacketAck, p->dest_port, p->dest_channel,
                              seq);
          cp_acks_.emplace_back(*p, *ack, cp_ready_height(key));
        }
      } else if (gh > 0) {
        redeliver_guest_packet_to_cp(*p, gh);
      }
    }
  }

  // 4. Guest-side acks already provable in the latest finalised block
  //    flow back to the cp immediately (re-using the FinalisedBlock
  //    path); the rest wait for the next finalisation.
  if (gh > 0 && !guest_acks_pending_.empty()) on_guest_block_finalised(gh);

  // 5. Kick the cp->guest pump; a half-verified pending update is
  //    picked up inside update_guest_client_attempt.
  pump_cp_to_guest();
}

// --- transaction sequencing ---------------------------------------------------

void RelayerAgent::submit_sequence(std::vector<host::Transaction> txs, SequenceDone done) {
  pipeline_.submit_sequence(std::move(txs),
                            [this, done = std::move(done)](const SequenceOutcome& out) {
                              if (!out.ok) ++failed_sequences_;
                              if (done) done(out);
                            });
}

void RelayerAgent::note_cp_reject(const std::string& label, const std::string& what) {
  pipeline_.errors().push(
      RelayError{RelayErrorKind::kCounterpartyReject, label, what, sim_.now(), 0});
}

std::vector<host::Transaction> RelayerAgent::chunked_call(ByteView payload,
                                                          host::Instruction final_ix,
                                                          std::uint64_t* buffer_id_out,
                                                          const std::string& label) {
  const std::uint64_t buffer_id = next_buffer_id_++;
  if (buffer_id_out != nullptr) *buffer_id_out = buffer_id;
  std::vector<host::Transaction> txs;
  std::uint32_t offset = 0;
  for (const Bytes& chunk : guest::ix::chunk_payload(payload, cfg_.host_max_tx_size)) {
    host::Transaction tx;
    tx.payer = payer_;
    tx.fee = cfg_.fee;
    tx.label = label + ":chunk";
    tx.instructions.push_back(guest::ix::chunk_upload(buffer_id, offset, chunk));
    offset += static_cast<std::uint32_t>(chunk.size());
    txs.push_back(std::move(tx));
  }
  host::Transaction fin;
  fin.payer = payer_;
  fin.fee = cfg_.fee;
  fin.label = label;
  fin.instructions.push_back(std::move(final_ix));
  txs.push_back(std::move(fin));
  return txs;
}

std::vector<host::Transaction> RelayerAgent::build_update_sequence(
    const ibc::SignedQuorumHeader& sh) {
  // Buffer payload: header bytes + optional next validator set,
  // sized exactly and encoded in place (no intermediate buffers).
  Encoder payload(4 + sh.header.byte_size() + 1 +
                  (sh.next_validators ? 4 + sh.next_validators->byte_size() : 0));
  payload.u32(static_cast<std::uint32_t>(sh.header.byte_size()));
  sh.header.encode_into(payload);
  payload.boolean(sh.next_validators.has_value());
  if (sh.next_validators) {
    payload.u32(static_cast<std::uint32_t>(sh.next_validators->byte_size()));
    sh.next_validators->encode_into(payload);
  }

  std::uint64_t buffer_id = 0;
  std::vector<host::Transaction> txs =
      chunked_call(payload.out(), guest::ix::begin_client_update(0), &buffer_id,
                   "lc-update");
  // chunked_call assigned the real buffer id after we passed 0; rebuild
  // the final instruction with the correct id.
  txs.back().instructions[0] = guest::ix::begin_client_update(buffer_id);

  const Hash32& digest = sh.signing_digest();
  for (std::size_t i = 0; i < sh.signatures.size();
       i += static_cast<std::size_t>(cfg_.sigs_per_update_tx)) {
    host::Transaction tx;
    tx.payer = payer_;
    tx.fee = cfg_.fee;
    tx.label = "lc-update:sigs";
    tx.instructions.push_back(guest::ix::verify_update_signatures());
    tx.sig_verifies.reserve(std::min(
        sh.signatures.size() - i, static_cast<std::size_t>(cfg_.sigs_per_update_tx)));
    for (std::size_t j = i;
         j < sh.signatures.size() && j < i + static_cast<std::size_t>(cfg_.sigs_per_update_tx);
         ++j) {
      tx.sig_verifies.push_back(
          host::SigVerify{sh.signatures[j].first, digest, sh.signatures[j].second});
    }
    txs.push_back(std::move(tx));
  }

  host::Transaction fin;
  fin.payer = payer_;
  fin.fee = cfg_.fee;
  fin.label = "lc-update:finish";
  fin.instructions.push_back(guest::ix::finish_client_update());
  txs.push_back(std::move(fin));
  return txs;
}

std::vector<host::Transaction> RelayerAgent::build_update_resume_sequence(
    const ibc::SignedQuorumHeader& sh,
    const guest::GuestContract::PendingUpdateInfo& pending) {
  // The contract dedups signatures against its pending-update `seen`
  // set and rejects a tx whose signatures are *all* duplicates, so a
  // resume must submit only the not-yet-verified ones.
  const std::set<crypto::PublicKey> seen(pending.seen.begin(), pending.seen.end());
  const Hash32& digest = sh.signing_digest();

  std::vector<host::Transaction> txs;
  host::Transaction cur;
  for (const auto& [pubkey, sig] : sh.signatures) {
    if (seen.count(pubkey) > 0) continue;
    cur.sig_verifies.push_back(host::SigVerify{pubkey, digest, sig});
    if (cur.sig_verifies.size() >= static_cast<std::size_t>(cfg_.sigs_per_update_tx)) {
      cur.payer = payer_;
      cur.fee = cfg_.fee;
      cur.label = "lc-update:sigs";
      cur.instructions.push_back(guest::ix::verify_update_signatures());
      txs.push_back(std::move(cur));
      cur = {};
    }
  }
  if (!cur.sig_verifies.empty()) {
    cur.payer = payer_;
    cur.fee = cfg_.fee;
    cur.label = "lc-update:sigs";
    cur.instructions.push_back(guest::ix::verify_update_signatures());
    txs.push_back(std::move(cur));
  }

  host::Transaction fin;
  fin.payer = payer_;
  fin.fee = cfg_.fee;
  fin.label = "lc-update:finish";
  fin.instructions.push_back(guest::ix::finish_client_update());
  txs.push_back(std::move(fin));
  return txs;
}

// --- guest -> counterparty ------------------------------------------------------

void RelayerAgent::push_guest_header_to_cp(ibc::Height guest_height,
                                           std::function<void()> done) {
  sim_.after_cancellable(
      cfg_.counterparty_latency_s,
      [this, guest_height, done = std::move(done)] {
        try {
          const guest::GuestBlock& block = contract_.block_at(guest_height);
          cp_.ibc().update_client(guest_client_on_cp_,
                                  block.to_signed_header().encode());
        } catch (const ibc::IbcError& e) {
          // Another relayer (or an explicit handshake push) already
          // submitted this height; duplicates are harmless.
          note_cp_reject("push#" + std::to_string(guest_height), e.what());
        }
        if (done) done();
      },
      timer_owner_);
}

void RelayerAgent::on_guest_block_finalised(ibc::Height height) {
  const guest::GuestBlock& block = contract_.block_at(height);
  const bool must_relay = !block.packets.empty() || block.last_in_epoch();

  // Every proof this event needs is against the one state root the
  // block committed, so fetch its immutable snapshot once and prove on
  // that handle — the contract is free to commit the next block (and
  // prune) underneath it.
  const trie::TrieSnapshot snap = contract_.snapshot_at(height);

  // Relay acks written on the guest for packets the counterparty sent
  // (they are provable once committed in a finalised guest block).
  std::vector<ibc::Packet> still_pending;
  std::vector<ibc::Packet> ready;
  for (const ibc::Packet& p : guest_acks_pending_) {
    const auto key = ibc::packet_key(ibc::KeyKind::kPacketAck, p.dest_port,
                                     p.dest_channel, p.sequence);
    bool provable = false;
    try {
      const trie::Proof proof = snap.prove(key);
      provable = trie::verify_proof(block.header.state_root, key, proof).kind ==
                 trie::VerifyOutcome::Kind::kFound;
    } catch (const trie::TrieError&) {
      provable = false;
    }
    (provable ? ready : still_pending).push_back(p);
  }
  guest_acks_pending_ = std::move(still_pending);

  if (!must_relay && ready.empty()) return;

  push_guest_header_to_cp(height, [this, height, snap, ready = std::move(ready)] {
    const guest::GuestBlock& blk = contract_.block_at(height);
    // Deliver the block's packets to the counterparty (Alg. 2, 7-10).
    // Their commitment proofs are generated as one batch against the
    // snapshot, sharded across the worker pool when it is free.
    std::vector<Bytes> keys;
    keys.reserve(blk.packets.size());
    for (const ibc::Packet& packet : blk.packets)
      keys.push_back(ibc::packet_key(ibc::KeyKind::kPacketCommitment,
                                     packet.source_port, packet.source_channel,
                                     packet.sequence)
                         .to_bytes());
    std::vector<trie::Proof> proofs;
    try {
      proofs = trie::ProofService::prove_batch(snap, keys);
    } catch (const trie::TrieError&) {
      proofs.clear();  // fall back to per-packet proving below
    }
    for (std::size_t i = 0; i < blk.packets.size(); ++i) {
      const ibc::Packet& packet = blk.packets[i];
      try {
        const trie::Proof proof =
            i < proofs.size() ? proofs[i] : snap.prove(keys[i]);
        const ibc::Acknowledgement ack = cp_.ibc().recv_packet(
            packet, height, proof, cp_.height(), cp_.now());
        ++to_cp_packets_;
        // The ack becomes provable at the next cp block.
        cp_acks_.emplace_back(packet, ack, cp_.height() + 1);
      } catch (const std::exception& e) {
        // Already delivered by another relayer or invalid; skip.
        note_cp_reject("recv#" + std::to_string(packet.sequence), e.what());
      }
    }
    // Relay guest-side acks back to the counterparty.
    for (const ibc::Packet& p : ready) {
      const auto key = ibc::packet_key(ibc::KeyKind::kPacketAck, p.dest_port,
                                       p.dest_channel, p.sequence);
      try {
        const auto ack = contract_.ack_log(p.dest_port, p.dest_channel, p.sequence);
        if (!ack) continue;
        const trie::Proof proof = snap.prove(key);
        cp_.ibc().acknowledge_packet(p, *ack, height, proof);
      } catch (const std::exception&) {
      }
    }
  });
}

// --- counterparty -> guest ---------------------------------------------------------

void RelayerAgent::on_cp_block(ibc::Height) { pump_cp_to_guest(); }

void RelayerAgent::update_guest_client(ibc::Height cp_height, std::function<void()> done) {
  update_guest_client_attempt(cp_height, std::move(done), cfg_.update_retry_budget);
}

void RelayerAgent::update_guest_client_attempt(ibc::Height cp_height,
                                               std::function<void()> done,
                                               int rebuilds_left) {
  if (contract_.counterparty_client().latest_height() >= cp_height) {
    if (done) done();
    return;
  }
  if (guest_update_in_flight_) {
    // The contract holds a single pending-update slot; serialize.
    queued_updates_.emplace_back(cp_height, std::move(done));
    return;
  }
  const ibc::SignedQuorumHeader& sh = cp_.header_at(cp_height);
  // Resume a half-verified update the contract already holds for this
  // exact height (left behind by a crash or a dead-lettered sequence)
  // instead of re-uploading chunks and resetting verified signatures.
  // With no crashes and no dead letters the pending slot is always
  // empty here, so the steady-state tx stream is unchanged.
  std::vector<host::Transaction> txs;
  const auto pending = contract_.pending_update_info();
  if (pending && pending->height == cp_height)
    txs = build_update_resume_sequence(sh, *pending);
  else
    txs = build_update_sequence(sh);
  guest_update_in_flight_ = true;
  submit_sequence(
      std::move(txs),
      [this, cp_height, done = std::move(done), rebuilds_left](
          const SequenceOutcome& out) mutable {
        guest_update_in_flight_ = false;
        if (out.ok) {
          update_txs_.add(out.txs);
          update_durations_.add(out.finished_at - out.start_time());
          update_costs_.add(out.cost_usd);
          if (done) done();
        } else if (rebuilds_left > 0 &&
                   contract_.counterparty_client().latest_height() < cp_height) {
          // The pipeline dead-lettered the sequence (an outage or
          // congestion window outlasted the per-tx budget).  Rebuild
          // from a fresh staging buffer — the old one may hold a
          // partial upload — and try again.
          update_guest_client_attempt(cp_height, std::move(done), rebuilds_left - 1);
          return;
        }
        if (!queued_updates_.empty()) {
          auto [h, cb] = std::move(queued_updates_.front());
          queued_updates_.pop_front();
          update_guest_client(h, std::move(cb));
        } else {
          pump_cp_to_guest();
        }
      });
}

void RelayerAgent::deliver_packet_to_guest(const ibc::Packet& packet,
                                           ibc::Height proof_height, SequenceDone done) {
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment, packet.source_port,
                                   packet.source_channel, packet.sequence);
  const trie::Proof proof = cp_proof(proof_height, key);
  Encoder payload(4 + packet.wire_size() + 8 + 4 + proof.byte_size());
  payload.u32(static_cast<std::uint32_t>(packet.wire_size()));
  packet.encode_into(payload);
  payload.u64(proof_height);
  payload.u32(static_cast<std::uint32_t>(proof.byte_size()));
  proof.serialize_into(payload);
  std::uint64_t buffer_id = 0;
  auto txs = chunked_call(payload.out(), guest::ix::receive_packet(0), &buffer_id,
                          "recv-packet");
  txs.back().instructions[0] = guest::ix::receive_packet(buffer_id);
  submit_sequence(
      std::move(txs),
      [this, packet, proof_height, done = std::move(done)](const SequenceOutcome& out) {
        if (out.ok) {
          ++to_guest_packets_;
          recv_txs_.add(out.txs);
          recv_costs_.add(out.cost_usd);
          guest_acks_pending_.push_back(packet);
        } else if (!contract_.ibc().packet_received(packet.dest_port,
                                                    packet.dest_channel,
                                                    packet.sequence)) {
          // Dead-lettered but still undelivered (and no other relayer
          // got it in): requeue so the next cp block pumps it again.
          cp_outgoing_.emplace_back(packet, proof_height);
        }
        if (done) done(out);
      });
}

void RelayerAgent::deliver_ack_to_guest(const ibc::Packet& packet,
                                        const ibc::Acknowledgement& ack,
                                        ibc::Height proof_height, SequenceDone done) {
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketAck, packet.dest_port,
                                   packet.dest_channel, packet.sequence);
  const trie::Proof proof = cp_proof(proof_height, key);
  Encoder payload(4 + packet.wire_size() + 4 + ack.wire_size() + 8 + 4 +
                  proof.byte_size());
  payload.u32(static_cast<std::uint32_t>(packet.wire_size()));
  packet.encode_into(payload);
  payload.u32(static_cast<std::uint32_t>(ack.wire_size()));
  ack.encode_into(payload);
  payload.u64(proof_height);
  payload.u32(static_cast<std::uint32_t>(proof.byte_size()));
  proof.serialize_into(payload);
  std::uint64_t buffer_id = 0;
  auto txs = chunked_call(payload.out(), guest::ix::acknowledge_packet(0), &buffer_id,
                          "ack-packet");
  txs.back().instructions[0] = guest::ix::acknowledge_packet(buffer_id);
  submit_sequence(
      std::move(txs),
      [this, packet, ack, proof_height, done = std::move(done)](
          const SequenceOutcome& out) {
        if (!out.ok && contract_.ibc().packet_pending(packet.source_port,
                                                      packet.source_channel,
                                                      packet.sequence)) {
          // The guest still holds the commitment, so the ack has not
          // landed through any path: requeue it for the next pump.
          cp_acks_.emplace_back(packet, ack, proof_height);
        }
        if (done) done(out);
      });
}

void RelayerAgent::deliver_timeout_to_guest(const ibc::Packet& packet,
                                            ibc::Height proof_height, SequenceDone done) {
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketReceipt, packet.dest_port,
                                   packet.dest_channel, packet.sequence);
  const trie::Proof proof = cp_proof(proof_height, key);
  Encoder payload(4 + packet.wire_size() + 8 + 4 + proof.byte_size());
  payload.u32(static_cast<std::uint32_t>(packet.wire_size()));
  packet.encode_into(payload);
  payload.u64(proof_height);
  payload.u32(static_cast<std::uint32_t>(proof.byte_size()));
  proof.serialize_into(payload);
  std::uint64_t buffer_id = 0;
  auto txs = chunked_call(payload.out(), guest::ix::timeout_packet(0), &buffer_id,
                          "timeout-packet");
  txs.back().instructions[0] = guest::ix::timeout_packet(buffer_id);
  submit_sequence(std::move(txs), std::move(done));
}

void RelayerAgent::pump_cp_to_guest() {
  if (guest_update_in_flight_) return;
  if (cp_outgoing_.empty() && cp_acks_.empty()) return;

  // Everything queued becomes provable at (or before) the latest cp
  // block; one light client update serves the whole batch.
  const ibc::Height target = cp_.height();
  bool anything_ready = false;
  for (const auto& [p, h] : cp_outgoing_) anything_ready |= (h <= target);
  for (const auto& [p, a, h] : cp_acks_) anything_ready |= (h <= target);
  if (!anything_ready) return;

  update_guest_client(target, [this, target] {
    std::deque<std::pair<ibc::Packet, ibc::Height>> later_packets;
    while (!cp_outgoing_.empty()) {
      auto [packet, ready_at] = cp_outgoing_.front();
      cp_outgoing_.pop_front();
      if (ready_at > target) {
        later_packets.emplace_back(packet, ready_at);
        continue;
      }
      deliver_packet_to_guest(packet, target);
    }
    cp_outgoing_ = std::move(later_packets);

    std::deque<std::tuple<ibc::Packet, ibc::Acknowledgement, ibc::Height>> later_acks;
    while (!cp_acks_.empty()) {
      auto [packet, ack, ready_at] = cp_acks_.front();
      cp_acks_.pop_front();
      if (ready_at > target) {
        later_acks.emplace_back(packet, ack, ready_at);
        continue;
      }
      deliver_ack_to_guest(packet, ack, target);
    }
    cp_acks_ = std::move(later_acks);
  });
}

}  // namespace bmg::relayer
