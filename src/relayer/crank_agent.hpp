// Block-production crank.
//
// GenerateBlock "can be invoked by anyone (e.g. whenever a host block
// is produced)" (paper §III-A).  This agent polls the contract state
// each host slot and submits a GenerateBlock transaction whenever the
// contract would accept one: the head is finalised and there are
// pending state changes, the head aged past Δ, or an epoch rotation
// is due.
#pragma once

#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

class CrankAgent {
 public:
  CrankAgent(sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
             crypto::PublicKey payer)
      : sim_(sim), host_(host), contract_(contract), payer_(std::move(payer)) {}

  void start() { schedule_poll(); }

  [[nodiscard]] std::uint64_t blocks_triggered() const { return triggered_; }

 private:
  void schedule_poll() {
    sim_.after(host::kSlotSeconds, [this] {
      poll();
      schedule_poll();
    });
  }

  void poll() {
    if (in_flight_) return;
    const auto& head = contract_.head();
    if (!head.finalised) return;
    const bool root_changed =
        head.header.state_root != contract_.store().root_hash();
    const bool aged =
        sim_.now() - head.header.timestamp >= contract_delta_seconds();
    if (!root_changed && !aged) return;

    in_flight_ = true;
    host::Transaction tx;
    tx.payer = payer_;
    tx.label = "generate-block";
    tx.instructions.push_back(guest::ix::generate_block());
    host_.submit(std::move(tx), [this](const host::TxResult& res) {
      in_flight_ = false;
      if (res.executed && res.success) ++triggered_;
    });
  }

  [[nodiscard]] double contract_delta_seconds() const { return delta_override_; }

 public:
  /// Mirror of the contract's Δ (the crank cannot read private config).
  void set_delta(double seconds) { delta_override_ = seconds; }

 private:
  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  crypto::PublicKey payer_;
  bool in_flight_ = false;
  std::uint64_t triggered_ = 0;
  double delta_override_ = 3600.0;
};

}  // namespace bmg::relayer
