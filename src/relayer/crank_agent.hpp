// Block-production crank.
//
// GenerateBlock "can be invoked by anyone (e.g. whenever a host block
// is produced)" (paper §III-A).  This agent polls the contract state
// each host slot and submits a GenerateBlock transaction whenever the
// contract would accept one: the head is finalised and there are
// pending state changes, the head aged past Δ, or an epoch rotation
// is due.
#pragma once

#include <string>

#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

class CrankAgent final : public sim::CrashableAgent {
 public:
  CrankAgent(sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
             crypto::PublicKey payer)
      : sim_(sim), host_(host), contract_(contract), payer_(std::move(payer)) {
    timer_owner_ = sim_.register_agent();
  }

  void start() { schedule_poll(); }

  // --- crash-restart (sim::CrashableAgent) ------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override {
    if (!running_) return;
    running_ = false;
    ++crash_count_;
    ++incarnation_;  // a GenerateBlock tx in flight still lands; its
                     // result handler is stale-guarded below
    sim_.cancel_agent(timer_owner_);
  }
  /// The crank is stateless beyond its poll loop: restart just starts
  /// polling again.  A pre-crash submission may still land, so the
  /// worst case is one duplicate GenerateBlock the contract rejects.
  void restart() override {
    if (running_) return;
    running_ = true;
    in_flight_ = false;
    schedule_poll();
  }
  [[nodiscard]] std::uint64_t crash_count() const noexcept { return crash_count_; }

  [[nodiscard]] std::uint64_t blocks_triggered() const { return triggered_; }

 private:
  void schedule_poll() {
    sim_.after_cancellable(
        host::kSlotSeconds,
        [this] {
          poll();
          schedule_poll();
        },
        timer_owner_);
  }

  void poll() {
    if (in_flight_) return;
    const auto& head = contract_.head();
    if (!head.finalised) return;
    const bool root_changed =
        head.header.state_root != contract_.store().root_hash();
    const bool aged =
        sim_.now() - head.header.timestamp >= contract_delta_seconds();
    if (!root_changed && !aged) return;

    in_flight_ = true;
    host::Transaction tx;
    tx.payer = payer_;
    tx.label = "generate-block";
    tx.instructions.push_back(guest::ix::generate_block());
    const std::uint64_t inc = incarnation_;
    host_.submit(std::move(tx), [this, inc](const host::TxResult& res) {
      if (inc != incarnation_) return;  // process died meanwhile
      in_flight_ = false;
      if (res.executed && res.success) ++triggered_;
    });
  }

  [[nodiscard]] double contract_delta_seconds() const { return delta_override_; }

 public:
  /// Mirror of the contract's Δ (the crank cannot read private config).
  void set_delta(double seconds) { delta_override_ = seconds; }

 private:
  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  crypto::PublicKey payer_;
  std::string name_ = "crank";
  bool running_ = true;
  std::uint64_t crash_count_ = 0;
  std::uint64_t incarnation_ = 0;  ///< guards stale host result handlers
  sim::Simulation::AgentId timer_owner_ = 0;
  bool in_flight_ = false;
  std::uint64_t triggered_ = 0;
  double delta_override_ = 3600.0;
};

}  // namespace bmg::relayer
