// Full-stack deployment harness: host chain + Guest Contract +
// counterparty chain + validator agents + crank + relayer, wired over
// one deterministic simulation.  This is the reproduction of the
// paper's §IV deployment (guest blockchain on Solana connected to
// Picasso) that the integration tests, examples and every evaluation
// bench build on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "counterparty/chain.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "relayer/crank_agent.hpp"
#include "relayer/crash_controller.hpp"
#include "relayer/relayer_agent.hpp"
#include "relayer/validator_agent.hpp"

namespace bmg::relayer {

struct DeploymentConfig {
  std::uint64_t seed = 42;
  /// When set, every RNG in the deployment derives from
  /// stream_seed(seed, *rng_stream) instead of `seed` directly — the
  /// grid runners' per-cell stream split (common/rng.hpp): cell i of a
  /// grid keyed by `seed` gets stream i, making its transcript a pure
  /// function of (seed, i) regardless of sibling cells or shard
  /// workers.  Unset keeps the historical seeding byte-identical.
  std::optional<std::uint64_t> rng_stream;
  host::ChainConfig host;
  counterparty::Config counterparty;
  guest::GuestConfig guest;
  RelayerConfig relayer;
  /// Validator roster; empty selects paper_validators().
  std::vector<ValidatorProfile> validators;

  DeploymentConfig() {
    // Keep integration runs snappy by default; the figure benches
    // override Δ and epoch length with the paper's values.
    guest.delta_seconds = 60.0;
    guest.epoch_length_host_slots = 1'000'000'000;
  }
};

/// The paper's validator roster (Table I): 17 active validators with
/// per-validator fee policies and latency distributions fitted to the
/// reported quantiles (including #1's heavy tail), plus 7 staked but
/// silent validators.
[[nodiscard]] std::vector<ValidatorProfile> paper_validators();

/// A priority-fee policy tuned to cost ~`usd` for a tx using
/// `expected_cu` compute units.
[[nodiscard]] host::FeePolicy priority_fee_for_usd(double usd, std::uint64_t expected_cu);

class Deployment {
 public:
  explicit Deployment(DeploymentConfig cfg = {});

  /// Starts chains and agents.  Called by open_ibc() if needed.
  void start();

  /// Runs the full IBC handshake (connection + channel) across the
  /// real stack: guest-side steps as chunked host transactions,
  /// counterparty steps as chain calls, light client updates relayed
  /// in both directions.  Blocks (pumps the simulation) until open.
  void open_ibc();

  // --- accessors ---------------------------------------------------------
  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] host::Chain& host() noexcept { return host_; }
  [[nodiscard]] guest::GuestContract& guest() noexcept { return *guest_; }
  [[nodiscard]] counterparty::CounterpartyChain& cp() noexcept { return cp_; }
  [[nodiscard]] RelayerAgent& relayer() noexcept { return *relayer_; }
  [[nodiscard]] CrankAgent& crank() noexcept { return *crank_; }
  [[nodiscard]] std::vector<std::unique_ptr<ValidatorAgent>>& validators() noexcept {
    return validators_;
  }
  /// Crash-window executor; relayer, crank and validators register in
  /// start().  Tests can add() further agents (e.g. fishermen).
  [[nodiscard]] CrashController& crash_controller() noexcept { return crash_ctl_; }
  /// Arms any kCrash windows appended to host().fault_plan() since the
  /// last call (start() arms the initial plan automatically).
  std::size_t schedule_crashes() { return crash_ctl_.schedule(host_.fault_plan()); }
  [[nodiscard]] const ibc::ChannelId& guest_channel() const noexcept {
    return guest_channel_;
  }
  [[nodiscard]] const ibc::ChannelId& cp_channel() const noexcept { return cp_channel_; }
  [[nodiscard]] const ibc::ClientId& guest_client_on_cp() const noexcept {
    return guest_client_on_cp_;
  }
  [[nodiscard]] const crypto::PublicKey& client_payer() const noexcept {
    return client_payer_;
  }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  /// The effective deployment seed (after stream derivation).  Attack
  /// and audit layers derive their own Rng streams from it so they
  /// never perturb the deployment's draw sequence.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // --- client operations (Figs. 2-3 metrics) -------------------------------
  struct SendRecord {
    double submitted_at = 0;
    double executed_at = 0;   ///< SendPacket invocation (on-chain)
    double finalised_at = 0;  ///< FinalisedBlock containing the packet
    /// Rooted delivery of that FinalisedBlock (== finalised_at on a
    /// linear host; trails by the rooted lag on a fork-aware one).
    double rooted_at = 0;
    double fee_usd = 0;
    std::uint64_t sequence = 0;
    bool executed = false;
    bool failed = false;
    bool finalised = false;
    bool rooted = false;
  };

  /// Sends an ICS-20 transfer from the guest side under `fee`.
  std::shared_ptr<SendRecord> send_transfer_from_guest(
      std::uint64_t amount, host::FeePolicy fee,
      double timeout_after_s = 3600.0);

  /// Sends a transfer from the counterparty toward the guest.
  ibc::Packet send_transfer_from_cp(std::uint64_t amount);

  // --- simulation pumping ---------------------------------------------------
  void run_for(double seconds);
  /// Pumps until `pred()` or timeout; returns whether pred held.
  bool run_until(const std::function<bool()>& pred, double timeout_s);

 private:
  void wire_finalisation_tracker();
  /// Waits until the guest head is finalised and commits the current
  /// store root; returns that height.
  ibc::Height wait_guest_commit();
  /// Waits for the next counterparty block; returns its height.
  ibc::Height wait_cp_block();
  /// Submits a chunked handshake call and pumps until it executes.
  void guest_handshake_call(ByteView payload);

  DeploymentConfig cfg_;
  /// Effective state seed: cfg_.seed or its per-cell stream split.
  /// Declared before every member seeded from it.
  std::uint64_t seed_;
  Rng rng_;
  sim::Simulation sim_;
  host::Chain host_;
  counterparty::CounterpartyChain cp_;
  guest::GuestContract* guest_ = nullptr;

  std::vector<std::unique_ptr<ValidatorAgent>> validators_;
  std::unique_ptr<CrankAgent> crank_;
  std::unique_ptr<RelayerAgent> relayer_;
  CrashController crash_ctl_{sim_};

  ibc::ClientId guest_client_on_cp_;
  ibc::ConnectionId guest_conn_, cp_conn_;
  ibc::ChannelId guest_channel_, cp_channel_;

  crypto::PublicKey client_payer_;
  crypto::PublicKey service_payer_;

  /// seq -> send record (finalisation tracking for Fig. 2).
  std::map<std::uint64_t, std::shared_ptr<SendRecord>> sent_;
  std::string last_event_id_;  ///< latest handshake event payload
  bool started_ = false;
};

}  // namespace bmg::relayer
