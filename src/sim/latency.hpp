// Latency models for simulated agents.
//
// The paper's Table I gives per-validator block-signing latency
// quantiles (median ≈ 3-6 s, an occasional heavy tail up to hours for
// validator #1).  We model a base log-normal fitted to the reported
// median/Q3 plus an optional heavy-tail "outage" mixture.
#pragma once

#include <cmath>

#include "common/rng.hpp"

namespace bmg::sim {

struct LatencyProfile {
  /// Log-normal parameters of the base latency (seconds).
  double mu = 0.0;
  double sigma = 0.5;
  /// Constant floor added to every sample (network / slot alignment).
  double floor = 0.0;
  /// Probability that a sample suffers a heavy-tail outage delay.
  double outage_prob = 0.0;
  /// Mean of the exponential outage delay added on top.
  double outage_mean = 0.0;

  /// Fits mu/sigma from a target median and 75th percentile.
  /// For a log-normal, median = e^mu and Q3 = e^(mu + 0.6745 sigma).
  [[nodiscard]] static LatencyProfile from_quantiles(double median, double q3,
                                                     double floor = 0.0) {
    LatencyProfile p;
    p.floor = floor;
    const double m = median - floor;
    const double q = q3 - floor;
    p.mu = std::log(m);
    p.sigma = std::log(q / m) / 0.6745;
    return p;
  }

  [[nodiscard]] LatencyProfile with_outages(double prob, double mean) const {
    LatencyProfile p = *this;
    p.outage_prob = prob;
    p.outage_mean = mean;
    return p;
  }

  [[nodiscard]] double sample(Rng& rng) const {
    double v = floor + rng.lognormal(mu, sigma);
    if (outage_prob > 0 && rng.chance(outage_prob)) v += rng.exponential(outage_mean);
    return v;
  }
};

}  // namespace bmg::sim
