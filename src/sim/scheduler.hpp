// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the reproduction — host slots,
// counterparty blocks, validator signing delays, relayer polling —
// runs as events on this scheduler.  Events at equal timestamps fire
// in scheduling order (FIFO), which makes runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bmg::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (clamped to >= 0).
  void after(SimTime delay, std::function<void()> fn);

  /// Runs the next event.  Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= `t`; afterwards now() == t.
  void run_until(SimTime t);

  /// Runs until the event queue is fully drained.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bmg::sim
