// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the reproduction — host slots,
// counterparty blocks, validator signing delays, relayer polling —
// runs as events on this scheduler.  Events at equal timestamps fire
// in scheduling order (FIFO), which makes runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace bmg::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

class Simulation {
 public:
  /// Handle for a cancellable timer; 0 is never a valid id.
  using TimerId = std::uint64_t;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (clamped to >= 0).
  void after(SimTime delay, std::function<void()> fn);

  /// Like at()/after(), but returns a handle that cancel() accepts.
  /// Cancelled events stay in the queue and pop as no-ops (they do not
  /// count as processed and never invoke `fn`).
  TimerId at_cancellable(SimTime t, std::function<void()> fn);
  TimerId after_cancellable(SimTime delay, std::function<void()> fn);

  /// Cancels a pending timer.  Returns true if the timer had not fired
  /// (or been cancelled) yet; false for already-fired, already-
  /// cancelled or unknown ids.  Safe to call with id 0 (no-op).
  bool cancel(TimerId id);

  /// Whether a cancellable timer is scheduled and not yet fired.
  [[nodiscard]] bool timer_pending(TimerId id) const {
    return id != 0 && pending_timers_.count(id) > 0;
  }

  /// Runs the next event.  Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= `t`; afterwards now() == t.
  void run_until(SimTime t);

  /// Runs until the event queue is fully drained.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  /// Queue length, including cancelled-but-not-yet-popped timers.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    TimerId timer = 0;  ///< 0 for plain (non-cancellable) events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> pending_timers_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bmg::sim
