// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the reproduction — host slots,
// counterparty blocks, validator signing delays, relayer polling —
// runs as events on this scheduler.  Events at equal timestamps fire
// in scheduling order (FIFO), which makes runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

namespace bmg::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

class Simulation {
 public:
  /// Handle for a cancellable timer; 0 is never a valid id.
  using TimerId = std::uint64_t;

  /// Handle for a timer-owning agent; 0 means "unowned".  Owned timers
  /// can be bulk-cancelled with cancel_agent() when the agent's
  /// process is killed (crash injection).
  using AgentId = std::uint64_t;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (clamped to >= 0).
  void after(SimTime delay, std::function<void()> fn);

  /// Like at()/after(), but returns a handle that cancel() accepts.
  /// Cancelled events stay in the queue and pop as no-ops (they do not
  /// count as processed and never invoke `fn`).  Passing an `owner`
  /// obtained from register_agent() additionally makes the timer
  /// eligible for cancel_agent(owner).
  TimerId at_cancellable(SimTime t, std::function<void()> fn, AgentId owner = 0);
  TimerId after_cancellable(SimTime delay, std::function<void()> fn, AgentId owner = 0);

  /// Cancels a pending timer.  Returns true if the timer had not fired
  /// (or been cancelled) yet; false for already-fired, already-
  /// cancelled or unknown ids.  Safe to call with id 0 (no-op).
  bool cancel(TimerId id);

  /// Allocates a fresh timer-owner handle for one agent.
  [[nodiscard]] AgentId register_agent() { return ++next_agent_id_; }

  /// Cancels every pending timer owned by `owner` (the sim half of a
  /// process kill: in-memory timers die with the process).  Returns
  /// the number of timers actually cancelled.  Id 0 is a no-op.
  std::size_t cancel_agent(AgentId owner);

  /// Whether a cancellable timer is scheduled and not yet fired.
  [[nodiscard]] bool timer_pending(TimerId id) const;

  /// Runs the next event.  Returns false when the queue is empty.
  bool step();

  /// A Simulation is single-threaded by contract: the first step()
  /// binds it to the calling thread and any later step() from another
  /// thread aborts with a diagnostic.  Shard workers run one complete
  /// simulation per grid cell, so a cross-thread pump means two shards
  /// are sharing a scheduler — a determinism bug, never a data race to
  /// tolerate.  rebind_pump_thread() is the explicit hand-off for the
  /// legitimate case (built on one thread, run inside a shard cell).
  void rebind_pump_thread() noexcept { pump_thread_ = std::thread::id{}; }

  /// Runs all events with timestamp <= `t`; afterwards now() == t.
  void run_until(SimTime t);

  /// Runs until the event queue is fully drained.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  /// Queue length, including cancelled-but-not-yet-popped timers.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    TimerId timer = 0;  ///< 0 for plain (non-cancellable) events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Binary heap managed with std::push_heap/pop_heap instead of
  /// std::priority_queue: popping can then MOVE the event (and its
  /// std::function) out of the container, where priority_queue::top()
  /// only hands out a const& and forces a copy — a heap allocation per
  /// fired event with any non-trivial capture.
  std::vector<Event> queue_;
  /// Pending (not fired, not cancelled) timers with their owner (0 for
  /// unowned).  Timer ids are handed out monotonically, so appending
  /// keeps the vector sorted and lookups are binary searches; erasing
  /// tombstones in place (owner := kCancelledOwner) and the vector is
  /// compacted when tombstones dominate.  A node-based map here costs
  /// one heap allocation per scheduled timer — this is the relayer
  /// poll path, the hottest allocation site in the whole simulation.
  struct PendingTimer {
    TimerId id;
    AgentId owner;
  };
  static constexpr AgentId kCancelledOwner = ~AgentId{0};
  std::vector<PendingTimer> pending_timers_;
  std::size_t pending_live_ = 0;  ///< non-tombstone entry count

  [[nodiscard]] PendingTimer* find_pending(TimerId id);
  [[nodiscard]] const PendingTimer* find_pending(TimerId id) const;
  /// Tombstones `id` if live; returns whether it was live.
  bool erase_pending(TimerId id);
  /// Owner -> timers it ever scheduled; entries may be stale (already
  /// fired or cancelled) and are dropped lazily by cancel_agent().
  std::unordered_map<AgentId, std::vector<TimerId>> owned_;
  /// Thread the first step() ran on; id{} until then (see
  /// rebind_pump_thread()).
  std::thread::id pump_thread_{};
  void check_pump_thread();
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 0;
  std::uint64_t next_agent_id_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bmg::sim
