#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace bmg::sim {

void Simulation::check_pump_thread() {
  const std::thread::id self = std::this_thread::get_id();
  if (pump_thread_ == std::thread::id{}) {
    pump_thread_ = self;
    return;
  }
  if (pump_thread_ != self) {
    std::fprintf(stderr,
                 "sim: Simulation pumped from a second thread — a scheduler is "
                 "being shared across shard cells (rebind_pump_thread() is the "
                 "explicit hand-off)\n");
    std::abort();
  }
}

Simulation::PendingTimer* Simulation::find_pending(TimerId id) {
  const auto it = std::lower_bound(
      pending_timers_.begin(), pending_timers_.end(), id,
      [](const PendingTimer& p, TimerId v) { return p.id < v; });
  if (it == pending_timers_.end() || it->id != id || it->owner == kCancelledOwner)
    return nullptr;
  return &*it;
}

const Simulation::PendingTimer* Simulation::find_pending(TimerId id) const {
  return const_cast<Simulation*>(this)->find_pending(id);
}

bool Simulation::erase_pending(TimerId id) {
  PendingTimer* p = find_pending(id);
  if (p == nullptr) return false;
  p->owner = kCancelledOwner;
  --pending_live_;
  // Compact once tombstones outnumber live entries (and the vector is
  // big enough to matter); amortised O(1) per erase.
  if (pending_timers_.size() > 64 && pending_live_ < pending_timers_.size() / 2) {
    std::erase_if(pending_timers_,
                  [](const PendingTimer& t) { return t.owner == kCancelledOwner; });
  }
  return true;
}

bool Simulation::timer_pending(TimerId id) const {
  return id != 0 && find_pending(id) != nullptr;
}

void Simulation::at(SimTime t, std::function<void()> fn) {
  queue_.push_back(Event{std::max(t, now_), next_seq_++, std::move(fn), 0});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Simulation::after(SimTime delay, std::function<void()> fn) {
  at(now_ + std::max(delay, 0.0), std::move(fn));
}

Simulation::TimerId Simulation::at_cancellable(SimTime t, std::function<void()> fn,
                                               AgentId owner) {
  const TimerId id = ++next_timer_id_;
  pending_timers_.push_back({id, owner});  // ids are monotonic: stays sorted
  ++pending_live_;
  if (owner != 0) owned_[owner].push_back(id);
  queue_.push_back(Event{std::max(t, now_), next_seq_++, std::move(fn), id});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return id;
}

Simulation::TimerId Simulation::after_cancellable(SimTime delay,
                                                 std::function<void()> fn,
                                                 AgentId owner) {
  return at_cancellable(now_ + std::max(delay, 0.0), std::move(fn), owner);
}

bool Simulation::cancel(TimerId id) {
  if (id == 0) return false;
  return erase_pending(id);
}

std::size_t Simulation::cancel_agent(AgentId owner) {
  if (owner == 0) return 0;
  const auto it = owned_.find(owner);
  if (it == owned_.end()) return 0;
  std::size_t cancelled = 0;
  for (const TimerId id : it->second) cancelled += erase_pending(id) ? 1 : 0;
  it->second.clear();
  return cancelled;
}

bool Simulation::step() {
  check_pump_thread();
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.time;
  if (ev.timer != 0 && !erase_pending(ev.timer)) {
    // Cancelled timer: consume the queue slot without running it.
    return true;
  }
  ++processed_;
  ev.fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.front().time <= t) step();
  now_ = std::max(now_, t);
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace bmg::sim
