#include "sim/scheduler.hpp"

#include <algorithm>

namespace bmg::sim {

void Simulation::at(SimTime t, std::function<void()> fn) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
}

void Simulation::after(SimTime delay, std::function<void()> fn) {
  at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB —
  // copy the function instead (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace bmg::sim
