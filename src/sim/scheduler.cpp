#include "sim/scheduler.hpp"

#include <algorithm>

namespace bmg::sim {

void Simulation::at(SimTime t, std::function<void()> fn) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn), 0});
}

void Simulation::after(SimTime delay, std::function<void()> fn) {
  at(now_ + std::max(delay, 0.0), std::move(fn));
}

Simulation::TimerId Simulation::at_cancellable(SimTime t, std::function<void()> fn,
                                               AgentId owner) {
  const TimerId id = ++next_timer_id_;
  pending_timers_.emplace(id, owner);
  if (owner != 0) owned_[owner].push_back(id);
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn), id});
  return id;
}

Simulation::TimerId Simulation::after_cancellable(SimTime delay,
                                                 std::function<void()> fn,
                                                 AgentId owner) {
  return at_cancellable(now_ + std::max(delay, 0.0), std::move(fn), owner);
}

bool Simulation::cancel(TimerId id) {
  if (id == 0) return false;
  return pending_timers_.erase(id) > 0;
}

std::size_t Simulation::cancel_agent(AgentId owner) {
  if (owner == 0) return 0;
  const auto it = owned_.find(owner);
  if (it == owned_.end()) return 0;
  std::size_t cancelled = 0;
  for (const TimerId id : it->second) cancelled += pending_timers_.erase(id);
  it->second.clear();
  return cancelled;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB —
  // copy the function instead (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  if (ev.timer != 0 && pending_timers_.erase(ev.timer) == 0) {
    // Cancelled timer: consume the queue slot without running it.
    return true;
  }
  ++processed_;
  ev.fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace bmg::sim
