#include "sim/scheduler.hpp"

#include <algorithm>

namespace bmg::sim {

void Simulation::at(SimTime t, std::function<void()> fn) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn), 0});
}

void Simulation::after(SimTime delay, std::function<void()> fn) {
  at(now_ + std::max(delay, 0.0), std::move(fn));
}

Simulation::TimerId Simulation::at_cancellable(SimTime t, std::function<void()> fn) {
  const TimerId id = ++next_timer_id_;
  pending_timers_.insert(id);
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn), id});
  return id;
}

Simulation::TimerId Simulation::after_cancellable(SimTime delay,
                                                 std::function<void()> fn) {
  return at_cancellable(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Simulation::cancel(TimerId id) {
  if (id == 0) return false;
  return pending_timers_.erase(id) > 0;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB —
  // copy the function instead (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  if (ev.timer != 0 && pending_timers_.erase(ev.timer) == 0) {
    // Cancelled timer: consume the queue slot without running it.
    return true;
  }
  ++processed_;
  ev.fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace bmg::sim
