// Crash-restart contract for simulated agent processes.
//
// The paper's deployment model assumes permissionless, unreliable
// relayers: delivery guarantees hold because *any* process can resume
// relaying from authoritative on-chain state (client heights, staged
// update chunks, unresolved packet commitments), not because any one
// process stays alive.  An agent implementing this interface splits
// its state accordingly:
//
//  - *ephemeral* state (in-flight pipeline sequences, backoff and
//    poll timers, in-memory queues) dies with crash() — the scheduler
//    bulk-cancels the agent's owned timers and nothing is flushed;
//  - *durable* state is whatever restart() can reconstruct by querying
//    the chains.  restart() must converge back to steady-state
//    operation with at-least-once semantics and no double-spend.
//
// Subscriptions (host events, counterparty block callbacks, gossip)
// are append-only in this codebase, so they persist for the object's
// lifetime; implementations gate their handlers on running() to model
// events missed while the process is down.
#pragma once

#include <string>

namespace bmg::sim {

class CrashableAgent {
 public:
  virtual ~CrashableAgent() = default;

  /// Stable name used to match FaultPlan crash windows (by prefix).
  [[nodiscard]] virtual const std::string& agent_name() const = 0;

  /// Whether the simulated process is currently alive.
  [[nodiscard]] virtual bool running() const = 0;

  /// Kills the process: drops ephemeral state, cancels owned timers.
  /// No-op when already crashed.
  virtual void crash() = 0;

  /// Boots a fresh process: resyncs durable state from the chains and
  /// resumes operation.  No-op when already running.
  virtual void restart() = 0;
};

}  // namespace bmg::sim
