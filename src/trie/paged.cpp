#include "trie/paged.hpp"

#include <string>

namespace bmg::trie {

StoreCore::StoreCore(const PageStoreConfig& cfg) : store_(PageStore::create(cfg)) {
  static constexpr std::uint32_t kRecSize[kNumKinds] = {
      sizeof(LeafRec), sizeof(BranchRec), sizeof(ExtRec)};
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    arenas_[k].rec_size = kRecSize[k];
    arenas_[k].slots_per_page =
        static_cast<std::uint32_t>(store_->page_bytes() / kRecSize[k]);
    if (arenas_[k].slots_per_page == 0)
      throw std::invalid_argument("StoreCore: page_bytes smaller than one record");
  }
}

TableChunk::Entry StoreCore::table_entry(const TableSet& tables, NodeKind k,
                                         std::uint32_t logical) const {
  const std::size_t c = logical / TableChunk::kEntries;
  const auto& chunks = tables[k];
  if (c >= chunks.size() || chunks[c] == nullptr) return {};
  return chunks[c]->e[logical % TableChunk::kEntries];
}

void StoreCore::set_table_entry(NodeKind k, std::uint32_t logical,
                                TableChunk::Entry entry) {
  const std::size_t c = logical / TableChunk::kEntries;
  auto& chunks = tables_[k];
  if (c >= chunks.size()) chunks.resize(c + 1);
  if (chunks[c] == nullptr) {
    chunks[c] = std::make_shared<TableChunk>();
  } else if (chunks[c].use_count() > 1) {
    // Shared with at least one snapshot's table copy: clone before the
    // write so the snapshot keeps seeing the frozen mapping.
    chunks[c] = std::make_shared<TableChunk>(*chunks[c]);
  }
  chunks[c]->e[logical % TableChunk::kEntries] = entry;
}

std::uint32_t StoreCore::new_logical_page(NodeKind k) {
  Arena& a = arenas_[k];
  std::uint32_t logical;
  if (!a.free_logical.empty()) {
    logical = a.free_logical.back();
    a.free_logical.pop_back();
  } else {
    logical = static_cast<std::uint32_t>(a.live.size());
    a.live.push_back(0);
    a.gen.push_back(0);
  }
  const PageId phys = store_->alloc();
  set_table_entry(k, logical, {phys, epoch_});
  return logical;
}

bool StoreCore::shared_with_snapshot(std::uint32_t birth) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !live_epochs_.empty() && *live_epochs_.rbegin() >= birth;
}

void StoreCore::retire_phys(PageId phys, std::uint32_t birth) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_epochs_.lower_bound(birth);
  if (it == live_epochs_.end()) {
    // No live snapshot can reference the page: reclaim immediately.
    store_->free_page(phys);
    return;
  }
  pending_.push_back({phys, birth, epoch_});
}

void StoreCore::retire_logical_page(NodeKind k, std::uint32_t logical) {
  Arena& a = arenas_[k];
  const TableChunk::Entry en = table_entry(tables_, k, logical);
  set_table_entry(k, logical, {});
  ++a.gen[logical];  // invalidates this page's free-list entries
  a.free_logical.push_back(logical);
  retire_phys(en.phys, en.birth);
}

std::uint32_t StoreCore::alloc_slot(NodeKind kind) {
  Arena& a = arenas_[kind];
  while (!a.free_slots.empty()) {
    const std::uint64_t packed = a.free_slots.back();
    a.free_slots.pop_back();
    const std::uint32_t idx = static_cast<std::uint32_t>(packed);
    const std::uint32_t gen = static_cast<std::uint32_t>(packed >> 32);
    const std::uint32_t logical = idx / a.slots_per_page;
    if (a.gen[logical] != gen) continue;  // page retired since the free
    ++a.live[logical];
    return make_node_id(kind, idx);
  }
  if (a.bump_page == kNilNode || a.bump_slot == a.slots_per_page) {
    a.bump_page = new_logical_page(kind);
    a.bump_slot = 0;
  }
  const std::uint64_t wide =
      static_cast<std::uint64_t>(a.bump_page) * a.slots_per_page + a.bump_slot;
  if (wide > kIndexMask) throw TrieError("trie: node id space exhausted");
  const std::uint32_t idx = static_cast<std::uint32_t>(wide);
  ++a.bump_slot;
  ++a.live[a.bump_page];
  return make_node_id(kind, idx);
}

void StoreCore::free_slot(std::uint32_t node_id) {
  const NodeKind kind = kind_of(node_id);
  Arena& a = arenas_[kind];
  const std::uint32_t idx = index_of(node_id);
  const std::uint32_t logical = idx / a.slots_per_page;
  --a.live[logical];
  if (a.live[logical] == 0 && logical != a.bump_page) {
    // Every slot on the page is sealed/freed: this is the reclamation
    // moment the §V-D metric counts.  The bump page is kept so its
    // unissued slots stay valid.
    retire_logical_page(kind, logical);
    return;
  }
  a.free_slots.push_back((static_cast<std::uint64_t>(a.gen[logical]) << 32) | idx);
}

const std::uint8_t* StoreCore::read_rec(const TableSet& tables, std::uint32_t node_id,
                                        OpPins& pins) const {
  const NodeKind kind = kind_of(node_id);
  const Arena& a = arenas_[kind];
  const std::uint32_t idx = index_of(node_id);
  const TableChunk::Entry en = table_entry(tables, kind, idx / a.slots_per_page);
  const std::uint8_t* base = pins.acquire(en.phys, /*write=*/false);
  return base + static_cast<std::size_t>(idx % a.slots_per_page) * a.rec_size;
}

std::uint8_t* StoreCore::write_rec(std::uint32_t node_id, OpPins& pins) {
  const NodeKind kind = kind_of(node_id);
  const Arena& a = arenas_[kind];
  const std::uint32_t idx = index_of(node_id);
  const std::uint32_t logical = idx / a.slots_per_page;
  TableChunk::Entry en = table_entry(tables_, kind, logical);
  if (en.birth != epoch_ && shared_with_snapshot(en.birth)) {
    // Copy-on-write: some snapshot's table points at this physical
    // page, so the live side moves to a private copy.
    if (expect_no_cow_)
      throw std::logic_error("trie: page copy during commit (dirty ref on shared page)");
    const PageId fresh = store_->alloc();
    const std::uint8_t* src = pins.acquire(en.phys, /*write=*/false);
    std::uint8_t* dst = pins.acquire(fresh, /*write=*/true);
    std::memcpy(dst, src, store_->page_bytes());
    set_table_entry(kind, logical, {fresh, epoch_});
    retire_phys(en.phys, en.birth);
    en = {fresh, epoch_};
  }
  std::uint8_t* base = pins.acquire(en.phys, /*write=*/true);
  return base + static_cast<std::size_t>(idx % a.slots_per_page) * a.rec_size;
}

StoreCore::Published StoreCore::publish() {
  Published p;
  p.tables = tables_;  // chunk pointers only; pages freeze via COW
  std::lock_guard<std::mutex> lock(mu_);
  p.epoch = epoch_;
  live_epochs_.insert(epoch_);
  ++epoch_;
  return p;
}

void StoreCore::release_epoch(std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_epochs_.find(epoch);
  if (it != live_epochs_.end()) live_epochs_.erase(it);
  // Sweep: a parked page is reclaimable once no live snapshot's epoch
  // falls inside its [birth, retire) visibility window.
  std::size_t kept = 0;
  for (PendingFree& p : pending_) {
    const auto e = live_epochs_.lower_bound(p.birth);
    if (e == live_epochs_.end() || *e >= p.retire) {
      store_->free_page(p.phys);
    } else {
      pending_[kept++] = p;
    }
  }
  pending_.resize(kept);
}

std::size_t StoreCore::pending_free_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void StoreCore::debug_check_pages(
    const std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kNumKinds>&
        occupancy) const {
  static constexpr const char* kKindName[kNumKinds] = {"leaf", "branch", "ext"};
  std::set<PageId> phys_seen;
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    const Arena& a = arenas_[k];
    const auto& occ = occupancy[k];
    for (std::uint32_t logical = 0; logical < a.live.size(); ++logical) {
      const auto it = occ.find(logical);
      const std::uint32_t walked = it == occ.end() ? 0 : it->second;
      if (a.live[logical] != walked)
        throw std::logic_error(std::string("trie page drift: ") + kKindName[k] +
                               " page " + std::to_string(logical) + " live=" +
                               std::to_string(a.live[logical]) + " walked=" +
                               std::to_string(walked));
      const TableChunk::Entry en = table_entry(tables_, static_cast<NodeKind>(k), logical);
      const bool mapped = en.phys != kNoPage;
      // A mapped page must hold live slots unless it is the retained
      // bump page; an unmapped page must be empty.
      if (!mapped && walked != 0)
        throw std::logic_error(std::string("trie page drift: ") + kKindName[k] +
                               " page " + std::to_string(logical) +
                               " occupied but unmapped");
      if (mapped && walked == 0 && logical != a.bump_page)
        throw std::logic_error(std::string("trie page drift: ") + kKindName[k] +
                               " page " + std::to_string(logical) +
                               " mapped but empty (missed reclamation)");
      if (mapped && !phys_seen.insert(en.phys).second)
        throw std::logic_error(std::string("trie page drift: physical page ") +
                               std::to_string(en.phys) + " mapped twice");
    }
  }
}

// ---------------------------------------------------------------------------
// Shared read walkers

namespace {
const LeafRec& leaf_at(const StoreCore& core, const TableSet& t, std::uint32_t id,
                       OpPins& pins) {
  return *reinterpret_cast<const LeafRec*>(core.read_rec(t, id, pins));
}
const BranchRec& branch_at(const StoreCore& core, const TableSet& t, std::uint32_t id,
                           OpPins& pins) {
  return *reinterpret_cast<const BranchRec*>(core.read_rec(t, id, pins));
}
const ExtRec& ext_at(const StoreCore& core, const TableSet& t, std::uint32_t id,
                     OpPins& pins) {
  return *reinterpret_cast<const ExtRec*>(core.read_rec(t, id, pins));
}
}  // namespace

Lookup walk_get(const StoreCore& core, const TableSet& tables, const RefRec& root,
                ByteView key, Hash32* value_out) {
  const Nibbles nibs = to_nibbles(key);
  const ByteView path{nibs.data(), nibs.size()};
  std::size_t pos = 0;
  OpPins pins(const_cast<StoreCore&>(core).store());
  RefRec ref = root;
  while (true) {
    if (ref.sealed()) return Lookup::kSealed;
    if (ref.is_empty()) return Lookup::kAbsent;
    switch (kind_of(ref.node)) {
      case kLeaf: {
        const LeafRec& leaf = leaf_at(core, tables, ref.node, pins);
        const ByteView rest = path.subspan(pos);
        if (leaf.suffix.size() == rest.size() &&
            common_prefix_span(leaf.suffix.view(), rest) == rest.size()) {
          if (value_out != nullptr) *value_out = leaf.value;
          return Lookup::kFound;
        }
        return Lookup::kAbsent;
      }
      case kBranch: {
        const BranchRec& branch = branch_at(core, tables, ref.node, pins);
        if (pos >= path.size()) return Lookup::kAbsent;
        ref = branch.children[path[pos]];
        ++pos;
        break;
      }
      default: {
        const ExtRec& ext = ext_at(core, tables, ref.node, pins);
        const std::size_t cp = common_prefix_span(ext.path.view(), path.subspan(pos));
        if (cp != ext.path.size()) return Lookup::kAbsent;
        pos += cp;
        ref = ext.child;
        break;
      }
    }
  }
}

Proof walk_prove(const StoreCore& core, const TableSet& tables, const RefRec& root,
                 ByteView key) {
  const Nibbles nibs = to_nibbles(key);
  const ByteView path{nibs.data(), nibs.size()};
  std::size_t pos = 0;
  OpPins pins(const_cast<StoreCore&>(core).store());
  Proof proof;

  RefRec ref = root;
  while (true) {
    if (ref.sealed()) throw SealedError("prove: key path enters a sealed region");
    if (ref.is_empty()) return proof;  // absence; possibly empty proof for empty trie
    switch (kind_of(ref.node)) {
      case kLeaf: {
        const LeafRec& leaf = leaf_at(core, tables, ref.node, pins);
        proof.nodes.emplace_back(
            ProofLeaf{Nibbles(leaf.suffix.nibs, leaf.suffix.nibs + leaf.suffix.len),
                      leaf.value});
        return proof;
      }
      case kBranch: {
        const BranchRec& branch = branch_at(core, tables, ref.node, pins);
        ProofBranch pb;
        for (std::size_t i = 0; i < 16; ++i)
          if (!branch.children[i].is_empty()) pb.children[i] = branch.children[i].hash;
        proof.nodes.emplace_back(std::move(pb));
        if (pos >= path.size()) return proof;  // absence (interior end)
        const RefRec child = branch.children[path[pos]];
        ++pos;
        if (child.is_empty()) return proof;  // absence proven by missing child
        ref = child;
        break;
      }
      default: {
        const ExtRec& ext = ext_at(core, tables, ref.node, pins);
        proof.nodes.emplace_back(
            ProofExtension{Nibbles(ext.path.nibs, ext.path.nibs + ext.path.len),
                           ext.child.hash});
        const std::size_t cp = common_prefix_span(ext.path.view(), path.subspan(pos));
        if (cp != ext.path.size()) return proof;  // absence at divergence
        pos += cp;
        ref = ext.child;
        break;
      }
    }
  }
}

}  // namespace bmg::trie
