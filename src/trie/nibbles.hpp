// Nibble (4-bit) path utilities for the Merkle-Patricia trie.
//
// Keys are byte strings; the trie branches on 4-bit nibbles, so a key
// of n bytes is a path of 2n nibbles (high nibble first).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"

namespace bmg::trie {

/// A sequence of nibbles, one per byte (values 0..15).
using Nibbles = std::vector<std::uint8_t>;

/// Expands a byte string into its nibble path.
[[nodiscard]] Nibbles to_nibbles(ByteView key);

/// Length of the longest common prefix of two nibble sequences.
[[nodiscard]] std::size_t common_prefix(const Nibbles& a, std::size_t a_off,
                                        const Nibbles& b, std::size_t b_off);

/// Sub-range copy [off, off+len).
[[nodiscard]] Nibbles slice(const Nibbles& n, std::size_t off, std::size_t len);

/// Canonical encoding used inside node hash preimages and proofs:
/// u16 count followed by one byte per nibble.
void encode_nibbles(Encoder& e, const Nibbles& n);
[[nodiscard]] Nibbles decode_nibbles(Decoder& d);

}  // namespace bmg::trie
