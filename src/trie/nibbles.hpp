// Nibble (4-bit) path utilities for the Merkle-Patricia trie.
//
// Keys are byte strings; the trie branches on 4-bit nibbles, so a key
// of n bytes is a path of 2n nibbles (high nibble first).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"

namespace bmg::trie {

/// A sequence of nibbles, one per byte (values 0..15), stored inline
/// up to 64 entries — enough for a 32-byte (hashed) key, which is the
/// longest path the IBC layer ever inserts.  Trie nodes embed a
/// Nibbles each, so the inline buffer is what lets a whole-trie copy
/// (the per-block proof snapshot) run without one heap allocation per
/// node.  Longer paths (only reachable by decoding an adversarial
/// proof, whose u16 count field can claim up to 65535) spill to the
/// heap and keep working.
class Nibbles {
 public:
  static constexpr std::size_t kInline = 64;
  using value_type = std::uint8_t;
  using const_iterator = const std::uint8_t*;
  using iterator = std::uint8_t*;

  Nibbles() = default;
  Nibbles(std::initializer_list<std::uint8_t> init) : Nibbles(init.begin(), init.end()) {}
  template <typename It>
  Nibbles(It first, It last) {
    for (; first != last; ++first) push_back(static_cast<std::uint8_t>(*first));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return spilled() ? spill_.data() : buf_.data();
  }
  [[nodiscard]] std::uint8_t* data() noexcept {
    return spilled() ? spill_.data() : buf_.data();
  }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }
  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }

  [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] std::uint8_t& operator[](std::size_t i) noexcept { return data()[i]; }

  void reserve(std::size_t n) {
    if (n > kInline) spill_.reserve(n);
  }

  void push_back(std::uint8_t nib) {
    if (size_ == kInline && spill_.empty()) {
      // First spill: migrate the inline prefix so the sequence stays
      // contiguous in one buffer.
      spill_.assign(buf_.begin(), buf_.end());
    }
    if (spilled() || size_ >= kInline) {
      spill_.push_back(nib);
    } else {
      buf_[size_] = nib;
    }
    ++size_;
  }

  friend bool operator==(const Nibbles& a, const Nibbles& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }

 private:
  [[nodiscard]] bool spilled() const noexcept { return size_ > kInline; }

  std::array<std::uint8_t, kInline> buf_;  // intentionally uninitialised
  std::uint32_t size_ = 0;
  std::vector<std::uint8_t> spill_;  ///< holds ALL nibbles once size_ > kInline
};

/// Expands a byte string into its nibble path.
[[nodiscard]] Nibbles to_nibbles(ByteView key);

/// Length of the longest common prefix of two nibble sequences.
[[nodiscard]] std::size_t common_prefix(const Nibbles& a, std::size_t a_off,
                                        const Nibbles& b, std::size_t b_off);

/// Sub-range copy [off, off+len).
[[nodiscard]] Nibbles slice(const Nibbles& n, std::size_t off, std::size_t len);

/// Canonical encoding used inside node hash preimages and proofs:
/// u16 count followed by one byte per nibble.
void encode_nibbles(Encoder& e, const Nibbles& n);
[[nodiscard]] Nibbles decode_nibbles(Decoder& d);

}  // namespace bmg::trie
