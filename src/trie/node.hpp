// Node hashing and proof structures shared by the trie (prover side)
// and the stand-alone proof verifier.
//
// Hash preimages are tagged canonical encodings:
//   leaf      : 0x00 || nibbles(suffix) || value
//   branch    : 0x01 || bitmap(u16)     || child hashes in index order
//   extension : 0x02 || nibbles(path)   || child hash
//
// The same encodings travel in proofs, so a verifier can recompute the
// root commitment from (key, proof) with no access to the trie.
#pragma once

#include <array>
#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "trie/nibbles.hpp"

namespace bmg::trie {

[[nodiscard]] Hash32 hash_leaf(const Nibbles& suffix, const Hash32& value);
[[nodiscard]] Hash32 hash_branch(const std::array<std::optional<Hash32>, 16>& children);
[[nodiscard]] Hash32 hash_extension(const Nibbles& path, const Hash32& child);

/// Raw-span variants: the paged storage layer keeps nibble paths as
/// fixed-size POD records, not Nibbles, so it hashes straight from a
/// (pointer, length) view of the on-page bytes.  Same preimages, same
/// hashes — the Nibbles overloads delegate here.
[[nodiscard]] Hash32 hash_leaf(ByteView suffix_nibbles, const Hash32& value);
[[nodiscard]] Hash32 hash_extension(ByteView path_nibbles, const Hash32& child);

/// Append the canonical hash preimage (the exact bytes the hashers
/// above digest) to `out`.  The trie's deferred commit() uses these to
/// build a level's worth of preimages and hash them as one batch.
void append_leaf_preimage(Bytes& out, const Nibbles& suffix, const Hash32& value);
void append_branch_preimage(Bytes& out,
                            const std::array<std::optional<Hash32>, 16>& children);
void append_extension_preimage(Bytes& out, const Nibbles& path, const Hash32& child);
void append_leaf_preimage(Bytes& out, ByteView suffix_nibbles, const Hash32& value);
void append_extension_preimage(Bytes& out, ByteView path_nibbles, const Hash32& child);

/// Proof node mirroring a trie node's hash preimage.
struct ProofLeaf {
  Nibbles suffix;
  Hash32 value;
};
struct ProofBranch {
  std::array<std::optional<Hash32>, 16> children;
};
struct ProofExtension {
  Nibbles path;
  Hash32 child;
};
using ProofNode = std::variant<ProofLeaf, ProofBranch, ProofExtension>;

[[nodiscard]] Hash32 hash_proof_node(const ProofNode& node);

/// A (non-)membership proof: the chain of nodes from the root toward
/// the key.  For membership the chain ends in the key's leaf; for
/// non-membership it ends at the divergence point.
struct Proof {
  std::vector<ProofNode> nodes;

  [[nodiscard]] Bytes serialize() const;
  /// Appends the serialization to `e` (exactly `byte_size()` bytes) —
  /// payload builders inline the proof without a temporary buffer.
  void serialize_into(Encoder& e) const;
  [[nodiscard]] static Proof deserialize(ByteView data);
  /// Serialized size in bytes (what a relayer pays to ship it).
  /// Computed arithmetically; never allocates.
  [[nodiscard]] std::size_t byte_size() const;
};

/// Result of checking a proof against a root commitment and a key.
struct VerifyOutcome {
  enum class Kind {
    kFound,    ///< key present; `value` holds the proven value
    kAbsent,   ///< key proven absent
    kInvalid,  ///< proof malformed or inconsistent with the root
  };
  Kind kind = Kind::kInvalid;
  Hash32 value{};
};

/// Verifies `proof` for `key` against `root`.  Pure function: suitable
/// for on-chain verification by a counterparty light client.
[[nodiscard]] VerifyOutcome verify_proof(const Hash32& root, ByteView key,
                                         const Proof& proof);

}  // namespace bmg::trie
