#include "trie/trie.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "trie/snapshot.hpp"

namespace bmg::trie {

namespace {
/// Serialized size contribution of a node (mirrors the hash preimage
/// encodings plus a small per-node arena header).
constexpr std::size_t kNodeHeader = 4;

const LeafRec& as_leaf(const std::uint8_t* rec) {
  return *reinterpret_cast<const LeafRec*>(rec);
}
const BranchRec& as_branch(const std::uint8_t* rec) {
  return *reinterpret_cast<const BranchRec*>(rec);
}
const ExtRec& as_ext(const std::uint8_t* rec) {
  return *reinterpret_cast<const ExtRec*>(rec);
}
LeafRec& as_leaf(std::uint8_t* rec) { return *reinterpret_cast<LeafRec*>(rec); }
BranchRec& as_branch(std::uint8_t* rec) { return *reinterpret_cast<BranchRec*>(rec); }
ExtRec& as_ext(std::uint8_t* rec) { return *reinterpret_cast<ExtRec*>(rec); }

/// Canonical hash preimage of a node straight from its on-page record.
void append_rec_preimage(Bytes& out, NodeKind kind, const std::uint8_t* rec) {
  switch (kind) {
    case kLeaf: {
      const LeafRec& n = as_leaf(rec);
      append_leaf_preimage(out, n.suffix.view(), n.value);
      break;
    }
    case kBranch: {
      const BranchRec& n = as_branch(rec);
      std::array<std::optional<Hash32>, 16> kids;
      for (std::size_t i = 0; i < 16; ++i)
        if (!n.children[i].is_empty()) kids[i] = n.children[i].hash;
      append_branch_preimage(out, kids);
      break;
    }
    case kExt: {
      const ExtRec& n = as_ext(rec);
      append_extension_preimage(out, n.path.view(), n.child.hash);
      break;
    }
  }
}

Hash32 rec_hash(NodeKind kind, const std::uint8_t* rec) {
  switch (kind) {
    case kLeaf: {
      const LeafRec& n = as_leaf(rec);
      return hash_leaf(n.suffix.view(), n.value);
    }
    case kBranch: {
      const BranchRec& n = as_branch(rec);
      std::array<std::optional<Hash32>, 16> kids;
      for (std::size_t i = 0; i < 16; ++i)
        if (!n.children[i].is_empty()) kids[i] = n.children[i].hash;
      return hash_branch(kids);
    }
    default: {
      const ExtRec& n = as_ext(rec);
      return hash_extension(n.path.view(), n.child.hash);
    }
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Allocation and stats

std::uint32_t SealableTrie::alloc_leaf(OpPins& pins, ByteView suffix,
                                       const Hash32& value) {
  const std::uint32_t id = core_->alloc_slot(kLeaf);
  LeafRec& n = as_leaf(core_->write_rec(id, pins));
  n.suffix.assign(suffix.data(), suffix.size());
  n.value = value;
  add_node_stats(pins, id);
  return id;
}

std::uint32_t SealableTrie::alloc_branch_pair(OpPins& pins, std::uint8_t nib_a,
                                              RefRec ref_a, std::uint8_t nib_b,
                                              RefRec ref_b) {
  const std::uint32_t id = core_->alloc_slot(kBranch);
  BranchRec& n = as_branch(core_->write_rec(id, pins));
  n = BranchRec{};  // slot may be recycled: clear previous occupant
  n.children[nib_a] = ref_a;
  n.children[nib_b] = ref_b;
  add_node_stats(pins, id);
  return id;
}

std::uint32_t SealableTrie::alloc_ext(OpPins& pins, ByteView path, RefRec child) {
  const std::uint32_t id = core_->alloc_slot(kExt);
  ExtRec& n = as_ext(core_->write_rec(id, pins));
  n.path.assign(path.data(), path.size());
  n.child = child;
  add_node_stats(pins, id);
  return id;
}

void SealableTrie::free_node(OpPins& pins, std::uint32_t node_id) {
  sub_node_stats(pins, node_id);
  core_->free_slot(node_id);
}

void SealableTrie::add_node_stats(OpPins& pins, std::uint32_t node_id) {
  const std::uint8_t* rec = core_->read_rec(core_->live_tables(), node_id, pins);
  switch (kind_of(node_id)) {
    case kLeaf: {
      const LeafRec& n = as_leaf(rec);
      ++stats_.leaf_count;
      stats_.byte_size += kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
      break;
    }
    case kBranch: {
      const BranchRec& n = as_branch(rec);
      ++stats_.branch_count;
      stats_.byte_size += kNodeHeader + 3;
      for (const RefRec& c : n.children) {
        if (c.sealed()) ++stats_.sealed_refs;
        if (!c.is_empty()) stats_.byte_size += 33;
      }
      break;
    }
    case kExt: {
      const ExtRec& n = as_ext(rec);
      ++stats_.extension_count;
      stats_.byte_size += kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
      if (n.child.sealed()) ++stats_.sealed_refs;
      break;
    }
  }
}

void SealableTrie::sub_node_stats(OpPins& pins, std::uint32_t node_id) {
  const std::uint8_t* rec = core_->read_rec(core_->live_tables(), node_id, pins);
  switch (kind_of(node_id)) {
    case kLeaf: {
      const LeafRec& n = as_leaf(rec);
      --stats_.leaf_count;
      stats_.byte_size -= kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
      break;
    }
    case kBranch: {
      const BranchRec& n = as_branch(rec);
      --stats_.branch_count;
      stats_.byte_size -= kNodeHeader + 3;
      for (const RefRec& c : n.children) {
        if (c.sealed()) --stats_.sealed_refs;
        if (!c.is_empty()) stats_.byte_size -= 33;
      }
      break;
    }
    case kExt: {
      const ExtRec& n = as_ext(rec);
      --stats_.extension_count;
      stats_.byte_size -= kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
      if (n.child.sealed()) --stats_.sealed_refs;
      break;
    }
  }
}

Hash32 SealableTrie::node_hash(OpPins& pins, std::uint32_t node_id) const {
  return rec_hash(kind_of(node_id),
                  core_->read_rec(core_->live_tables(), node_id, pins));
}

// ---------------------------------------------------------------------------
// Reads

void SealableTrie::ensure_committed() const {
  if (root_.dirty()) const_cast<SealableTrie*>(this)->commit();
}

Hash32 SealableTrie::root_hash() const {
  ensure_committed();
  if (root_.is_empty()) return Hash32{};
  return root_.hash;
}

SealableTrie::Lookup SealableTrie::get(ByteView key, Hash32* value_out) const {
  return walk_get(*core_, core_->live_tables(), root_, key, value_out);
}

Proof SealableTrie::prove(ByteView key) const {
  ensure_committed();
  return walk_prove(*core_, core_->live_tables(), root_, key);
}

// ---------------------------------------------------------------------------
// set

void SealableTrie::set(ByteView key, const Hash32& value) {
  const Nibbles nibs = to_nibbles(key);
  if (nibs.size() > PathRec::kMaxNibbles)
    throw TrieError("set: key longer than 32 bytes (hash commitment paths)");
  OpPins pins(core_->store());
  root_ = set_rec(pins, root_, ByteView{nibs.data(), nibs.size()}, 0, value);
}

RefRec SealableTrie::set_rec(OpPins& pins, RefRec ref, ByteView path, std::size_t pos,
                             const Hash32& value) {
  if (ref.sealed()) throw SealedError("set: key path crosses a sealed region");

  if (ref.is_empty())
    return RefRec::live_dirty(alloc_leaf(pins, path.subspan(pos), value));

  switch (kind_of(ref.node)) {
    case kLeaf: {
      // Copy the suffix out: the record may move (copy-on-write) or be
      // rewritten below.
      const PathRec old_suffix =
          as_leaf(core_->read_rec(core_->live_tables(), ref.node, pins)).suffix;
      const ByteView rest = path.subspan(pos);
      const std::size_t cp = common_prefix_span(old_suffix.view(), rest);
      if (cp == old_suffix.size() && cp == rest.size()) {
        // Same key: update in place; the hash is recomputed at commit.
        as_leaf(core_->write_rec(ref.node, pins)).value = value;
        ref.set_dirty(true);
        return ref;
      }
      if (cp == old_suffix.size() || cp == rest.size())
        throw PrefixError("set: key is a prefix of an existing key (or vice versa)");

      // Split: branch at the divergence nibble, possibly under an extension.
      const std::uint8_t old_nib = old_suffix.nibs[cp];
      const std::uint8_t new_nib = rest[cp];

      // Shorten the existing leaf (reuse its slot).
      sub_node_stats(pins, ref.node);
      as_leaf(core_->write_rec(ref.node, pins))
          .suffix.assign(old_suffix.nibs + cp + 1, old_suffix.size() - cp - 1);
      add_node_stats(pins, ref.node);
      const RefRec old_ref = RefRec::live_dirty(ref.node);

      const RefRec new_ref =
          RefRec::live_dirty(alloc_leaf(pins, rest.subspan(cp + 1), value));
      const RefRec branch_ref = RefRec::live_dirty(
          alloc_branch_pair(pins, old_nib, old_ref, new_nib, new_ref));

      if (cp == 0) return branch_ref;
      return RefRec::live_dirty(
          alloc_ext(pins, ByteView{old_suffix.nibs, cp}, branch_ref));
    }

    case kBranch: {
      if (pos == path.size())
        throw PrefixError("set: key terminates at an interior branch");
      const std::uint8_t nib = path[pos];
      const std::uint32_t node_id = ref.node;
      const RefRec child =
          as_branch(core_->read_rec(core_->live_tables(), node_id, pins)).children[nib];
      const RefRec updated = set_rec(pins, child, path, pos + 1, value);
      // Recursion may have copied pages; re-resolve before writing.
      BranchRec& fresh = as_branch(core_->write_rec(node_id, pins));
      if (fresh.children[nib].is_empty()) stats_.byte_size += 33;
      fresh.children[nib] = updated;
      ref.set_dirty(true);
      return ref;
    }

    default: {
      const ExtRec old_ext =
          as_ext(core_->read_rec(core_->live_tables(), ref.node, pins));
      const ByteView rest = path.subspan(pos);
      const std::size_t cp = common_prefix_span(old_ext.path.view(), rest);
      if (cp == old_ext.path.size()) {
        const std::uint32_t node_id = ref.node;
        const RefRec updated = set_rec(pins, old_ext.child, path, pos + cp, value);
        as_ext(core_->write_rec(node_id, pins)).child = updated;
        ref.set_dirty(true);
        return ref;
      }
      if (cp == rest.size())
        throw PrefixError("set: key terminates inside an extension path");

      // Split this extension at nibble cp.
      const std::uint8_t old_nib = old_ext.path.nibs[cp];
      const std::uint8_t new_nib = rest[cp];
      const std::size_t old_tail = old_ext.path.size() - cp - 1;

      RefRec old_side;
      if (old_tail == 0) {
        // The branch points directly at the old extension's child.
        old_side = old_ext.child;
        free_node(pins, ref.node);
      } else {
        // Reuse this slot as the shortened extension.
        sub_node_stats(pins, ref.node);
        as_ext(core_->write_rec(ref.node, pins))
            .path.assign(old_ext.path.nibs + cp + 1, old_tail);
        add_node_stats(pins, ref.node);
        old_side = RefRec::live_dirty(ref.node);
      }

      const RefRec new_ref =
          RefRec::live_dirty(alloc_leaf(pins, rest.subspan(cp + 1), value));
      const RefRec branch_ref = RefRec::live_dirty(
          alloc_branch_pair(pins, old_nib, old_side, new_nib, new_ref));

      if (cp == 0) return branch_ref;
      return RefRec::live_dirty(
          alloc_ext(pins, ByteView{old_ext.path.nibs, cp}, branch_ref));
    }
  }
}

// ---------------------------------------------------------------------------
// seal

void SealableTrie::seal(ByteView key) {
  const Nibbles nibs = to_nibbles(key);
  const ByteView path{nibs.data(), nibs.size()};
  std::size_t pos = 0;
  OpPins pins(core_->store());

  // Walk down, recording the chain of (node id, child slot) so we can
  // propagate sealing upward.  Slot -1 means "extension child".  The
  // walk resolves every node through write_rec: the spine will be
  // mutated (hash fixups, sealed markers), so shared pages are copied
  // up front and all record pointers below stay stable.
  struct Step {
    std::uint32_t node;
    int slot;  // 0..15 for branch children, -1 for extension child
  };
  std::vector<Step> chain;

  RefRec* ref = &root_;
  while (true) {
    if (ref->sealed()) throw SealedError("seal: key already inside a sealed region");
    if (ref->is_empty()) throw NotFoundError("seal: key not present");
    bool done = false;
    switch (kind_of(ref->node)) {
      case kLeaf: {
        const LeafRec& leaf = as_leaf(core_->write_rec(ref->node, pins));
        const ByteView rest = path.subspan(pos);
        if (leaf.suffix.size() != rest.size() ||
            common_prefix_span(leaf.suffix.view(), rest) != rest.size())
          throw NotFoundError("seal: key not present");
        done = true;  // `ref` points at the leaf to seal
        break;
      }
      case kBranch: {
        BranchRec& branch = as_branch(core_->write_rec(ref->node, pins));
        if (pos >= path.size()) throw NotFoundError("seal: key not present");
        chain.push_back({ref->node, path[pos]});
        ref = &branch.children[path[pos]];
        ++pos;
        break;
      }
      default: {
        ExtRec& ext = as_ext(core_->write_rec(ref->node, pins));
        const std::size_t cp = common_prefix_span(ext.path.view(), path.subspan(pos));
        if (cp != ext.path.size()) throw NotFoundError("seal: key not present");
        chain.push_back({ref->node, -1});
        pos += cp;
        ref = &ext.child;
        break;
      }
    }
    if (done) break;
  }

  // Seal the leaf: drop its storage, keep the hash in the parent ref.
  // A dirty ref's recorded hash is stale, so fix it before the node's
  // contents disappear — sealing must preserve the (future) root.
  if (ref->dirty()) {
    ref->hash = node_hash(pins, ref->node);
    ref->set_dirty(false);
  }
  free_node(pins, ref->node);
  ref->node = kNilNode;
  ref->set_sealed(true);
  ++stats_.sealed_refs;

  // Propagate: an extension whose child is sealed seals too; a branch
  // whose present children are all sealed seals too (paper §III-A).
  while (!chain.empty()) {
    const Step step = chain.back();
    chain.pop_back();

    bool seal_this = false;
    if (kind_of(step.node) == kBranch) {
      seal_this = true;
      const BranchRec& branch =
          as_branch(core_->read_rec(core_->live_tables(), step.node, pins));
      for (const RefRec& child : branch.children) {
        if (child.is_empty()) continue;
        if (!child.sealed()) {
          seal_this = false;
          break;
        }
      }
    } else {
      seal_this =
          as_ext(core_->read_rec(core_->live_tables(), step.node, pins)).child.sealed();
    }
    if (!seal_this) break;

    // Find the ref in the parent (or root) that points at this node.
    RefRec* owner = nullptr;
    if (chain.empty()) {
      owner = &root_;
    } else {
      const Step parent = chain.back();
      if (parent.slot >= 0) {
        owner = &as_branch(core_->write_rec(parent.node, pins))
                     .children[static_cast<std::size_t>(parent.slot)];
      } else {
        owner = &as_ext(core_->write_rec(parent.node, pins)).child;
      }
    }
    // All children of this node are sealed with valid hashes, so its
    // own hash can be finalized on the spot if it was pending.
    if (owner->dirty()) {
      owner->hash = node_hash(pins, step.node);
      owner->set_dirty(false);
    }
    free_node(pins, step.node);
    owner->node = kNilNode;
    owner->set_sealed(true);
    ++stats_.sealed_refs;
  }
}

// ---------------------------------------------------------------------------
// commit

void SealableTrie::commit() {
  if (!root_.dirty()) return;

  OpPins pins(core_->store());
  // Dirty refs only exist on pages already private to this epoch
  // window (the write that marked them dirty copied the page if
  // needed), so resolving them below cannot trigger a page copy —
  // which is what keeps the collected raw pointers stable.  The guard
  // turns a violation into an immediate error instead of a silent
  // write to a stale frame.
  core_->set_expect_no_cow(true);

  // Collect every dirty ref with its depth.  `ref` points at the
  // parent's child slot (or root_); `rec` at the node's own record.
  struct Item {
    RefRec* ref;
    std::uint8_t* rec;
  };
  std::vector<std::vector<Item>> levels;
  struct Pending {
    RefRec* ref;
    std::uint32_t depth;
  };
  std::vector<Pending> stack;
  stack.push_back({&root_, 0});
  while (!stack.empty()) {
    const Pending it = stack.back();
    stack.pop_back();
    std::uint8_t* rec = core_->write_rec(it.ref->node, pins);
    if (levels.size() <= it.depth) levels.resize(it.depth + 1);
    levels[it.depth].push_back({it.ref, rec});
    switch (kind_of(it.ref->node)) {
      case kBranch:
        for (RefRec& c : as_branch(rec).children)
          if (c.dirty()) stack.push_back({&c, it.depth + 1});
        break;
      case kExt: {
        RefRec& c = as_ext(rec).child;
        if (c.dirty()) stack.push_back({&c, it.depth + 1});
        break;
      }
      default:
        break;
    }
  }

  // Deepest level first, so every child hash is final before its
  // parent's preimage is built.  Nodes within one level are
  // independent — siblings or cousins — so a level is hashed as one
  // multi-lane SHA-256 batch, and a wide level further shards
  // preimage building + hashing across the fork-join workers.  Shards
  // write disjoint RefRec objects and read only already-final child
  // hashes, so the committed hashes are byte-identical for any thread
  // count.
  constexpr std::size_t kParallelLevelMin = 64;
  Bytes scratch;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::vector<ByteView> views;
  std::vector<Hash32> hashes;
  for (std::size_t depth = levels.size(); depth-- > 0;) {
    std::vector<Item>& level = levels[depth];
    const std::size_t n = level.size();
    if (n == 1) {
      // Lone node on this level: the fixed-shape one-shot hasher
      // (stack preimage) beats building a batch of one.
      Item& it = level[0];
      it.ref->hash = rec_hash(kind_of(it.ref->node), it.rec);
      it.ref->set_dirty(false);
    } else if (n >= kParallelLevelMin && parallel::thread_count() > 1 &&
               !parallel::in_parallel_region()) {
      parallel::parallel_for(
          n, kParallelLevelMin, [&](std::size_t begin, std::size_t end, std::size_t) {
            // Per-shard scratch; the nested sha256_batch serializes.
            Bytes pre;
            std::vector<std::pair<std::size_t, std::size_t>> offs;
            offs.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
              const std::size_t off = pre.size();
              append_rec_preimage(pre, kind_of(level[i].ref->node), level[i].rec);
              offs.emplace_back(off, pre.size() - off);
            }
            std::vector<ByteView> v(end - begin);
            std::vector<Hash32> h(end - begin);
            for (std::size_t i = 0; i < v.size(); ++i)
              v[i] = ByteView{pre.data() + offs[i].first, offs[i].second};
            crypto::sha256_batch(v.data(), v.size(), h.data());
            for (std::size_t i = 0; i < v.size(); ++i) {
              level[begin + i].ref->hash = h[i];
              level[begin + i].ref->set_dirty(false);
            }
          });
    } else {
      scratch.clear();
      spans.clear();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t off = scratch.size();
        append_rec_preimage(scratch, kind_of(level[i].ref->node), level[i].rec);
        spans.emplace_back(off, scratch.size() - off);
      }
      views.resize(n);
      hashes.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        views[i] = ByteView{scratch.data() + spans[i].first, spans[i].second};
      crypto::sha256_batch(views.data(), n, hashes.data());
      for (std::size_t i = 0; i < n; ++i) {
        level[i].ref->hash = hashes[i];
        level[i].ref->set_dirty(false);
      }
    }
  }
  core_->set_expect_no_cow(false);
}

// ---------------------------------------------------------------------------
// Snapshots

TrieSnapshot SealableTrie::snapshot() {
  commit();
  StoreCore::Published pub = core_->publish();
  auto impl = std::make_shared<TrieSnapshot::Impl>();
  impl->core = core_;
  impl->tables = std::move(pub.tables);
  impl->root = root_;
  impl->trie_stats = stats_;
  impl->epoch = pub.epoch;
  return TrieSnapshot(std::move(impl));
}

// ---------------------------------------------------------------------------
// Stats verification

TrieStats SealableTrie::recompute_stats(
    std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kNumKinds>* occupancy)
    const {
  OpPins pins(core_->store());
  TrieStats s;
  const auto note = [&](std::uint32_t id) {
    if (occupancy == nullptr) return;
    const std::uint32_t logical =
        index_of(id) / static_cast<std::uint32_t>(core_->slots_per_page(kind_of(id)));
    ++(*occupancy)[kind_of(id)][logical];
  };
  if (root_.sealed()) ++s.sealed_refs;
  std::vector<std::uint32_t> stack;
  if (root_.is_live()) stack.push_back(root_.node);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    note(id);
    const std::uint8_t* rec = core_->read_rec(core_->live_tables(), id, pins);
    switch (kind_of(id)) {
      case kLeaf: {
        const LeafRec& n = as_leaf(rec);
        ++s.leaf_count;
        s.byte_size += kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
        break;
      }
      case kBranch: {
        const BranchRec& n = as_branch(rec);
        ++s.branch_count;
        s.byte_size += kNodeHeader + 3;
        for (const RefRec& c : n.children) {
          if (c.sealed()) ++s.sealed_refs;
          if (!c.is_empty()) s.byte_size += 33;
          if (c.is_live()) stack.push_back(c.node);
        }
        break;
      }
      default: {
        const ExtRec& n = as_ext(rec);
        ++s.extension_count;
        s.byte_size += kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
        if (n.child.sealed()) ++s.sealed_refs;
        if (n.child.is_live()) stack.push_back(n.child.node);
        break;
      }
    }
  }
  return s;
}

void SealableTrie::debug_check_stats() const {
  std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kNumKinds> occupancy;
  const TrieStats live = recompute_stats(&occupancy);
  if (live != stats_) {
    const auto diff = [](const char* field, std::size_t got, std::size_t want) {
      return std::string(field) + " cached=" + std::to_string(got) +
             " live=" + std::to_string(want) + "; ";
    };
    std::string msg = "TrieStats drift: ";
    if (live.leaf_count != stats_.leaf_count)
      msg += diff("leaf_count", stats_.leaf_count, live.leaf_count);
    if (live.branch_count != stats_.branch_count)
      msg += diff("branch_count", stats_.branch_count, live.branch_count);
    if (live.extension_count != stats_.extension_count)
      msg += diff("extension_count", stats_.extension_count, live.extension_count);
    if (live.sealed_refs != stats_.sealed_refs)
      msg += diff("sealed_refs", stats_.sealed_refs, live.sealed_refs);
    if (live.byte_size != stats_.byte_size)
      msg += diff("byte_size", stats_.byte_size, live.byte_size);
    throw std::logic_error(msg);
  }
  core_->debug_check_pages(occupancy);
}

}  // namespace bmg::trie
