#include "trie/trie.hpp"

#include <utility>

namespace bmg::trie {

namespace {
/// Serialized size contribution of a node (mirrors the hash preimage
/// encodings plus a small per-node arena header).
constexpr std::size_t kNodeHeader = 4;
}  // namespace

std::uint32_t SealableTrie::alloc(Node node) {
  if (!free_list_.empty()) {
    const std::uint32_t idx = free_list_.back();
    free_list_.pop_back();
    arena_[idx] = std::move(node);
    return idx;
  }
  arena_.push_back(std::move(node));
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void SealableTrie::free_node(std::uint32_t idx) {
  arena_[idx] = std::monostate{};
  free_list_.push_back(idx);
}

std::optional<Hash32> SealableTrie::ref_hash(const Ref& ref) {
  if (ref.is_empty()) return std::nullopt;
  return ref.hash;
}

Hash32 SealableTrie::node_hash(std::uint32_t idx) const {
  const Node& node = arena_[idx];
  if (const auto* leaf = std::get_if<LeafNode>(&node))
    return hash_leaf(leaf->suffix, leaf->value);
  if (const auto* branch = std::get_if<BranchNode>(&node)) {
    std::array<std::optional<Hash32>, 16> kids;
    for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(branch->children[i]);
    return hash_branch(kids);
  }
  const auto& ext = std::get<ExtensionNode>(node);
  return hash_extension(ext.path, ext.child.hash);
}

Hash32 SealableTrie::root_hash() const noexcept {
  if (root_.is_empty()) return Hash32{};
  return root_.hash;
}

bool SealableTrie::empty() const noexcept { return root_.is_empty(); }

void SealableTrie::set(ByteView key, const Hash32& value) {
  const Nibbles nibs = to_nibbles(key);
  root_ = set_rec(root_, nibs, 0, value);
}

SealableTrie::Ref SealableTrie::set_rec(Ref ref, const Nibbles& nibs, std::size_t pos,
                                        const Hash32& value) {
  if (ref.sealed) throw SealedError("set: key path crosses a sealed region");

  if (ref.is_empty()) {
    LeafNode leaf{slice(nibs, pos, nibs.size() - pos), value};
    const Hash32 h = hash_leaf(leaf.suffix, leaf.value);
    return Ref{h, alloc(Node{std::move(leaf)}), false};
  }

  Node& node = arena_[ref.node];

  if (auto* leaf = std::get_if<LeafNode>(&node)) {
    const std::size_t rest = nibs.size() - pos;
    const std::size_t cp = common_prefix(leaf->suffix, 0, nibs, pos);
    if (cp == leaf->suffix.size() && cp == rest) {
      // Same key: update in place.
      leaf->value = value;
      ref.hash = hash_leaf(leaf->suffix, leaf->value);
      return ref;
    }
    if (cp == leaf->suffix.size() || cp == rest)
      throw PrefixError("set: key is a prefix of an existing key (or vice versa)");

    // Split: branch at the divergence nibble, possibly under an extension.
    const std::uint8_t old_nib = leaf->suffix[cp];
    const std::uint8_t new_nib = nibs[pos + cp];
    const Nibbles shared = slice(leaf->suffix, 0, cp);

    // Shorten the existing leaf (reuse its arena slot).
    leaf->suffix = slice(leaf->suffix, cp + 1, leaf->suffix.size() - cp - 1);
    const Hash32 old_leaf_hash = hash_leaf(leaf->suffix, leaf->value);
    const Ref old_ref{old_leaf_hash, ref.node, false};

    LeafNode new_leaf{slice(nibs, pos + cp + 1, rest - cp - 1), value};
    const Hash32 new_leaf_hash = hash_leaf(new_leaf.suffix, new_leaf.value);
    const Ref new_ref{new_leaf_hash, alloc(Node{std::move(new_leaf)}), false};

    BranchNode branch;
    branch.children[old_nib] = old_ref;
    branch.children[new_nib] = new_ref;
    std::array<std::optional<Hash32>, 16> kids;
    for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(branch.children[i]);
    const Hash32 branch_hash = hash_branch(kids);
    const Ref branch_ref{branch_hash, alloc(Node{std::move(branch)}), false};

    if (shared.empty()) return branch_ref;
    const Hash32 ext_hash = hash_extension(shared, branch_ref.hash);
    ExtensionNode ext{shared, branch_ref};
    return Ref{ext_hash, alloc(Node{std::move(ext)}), false};
  }

  if (auto* branch = std::get_if<BranchNode>(&node)) {
    if (pos == nibs.size())
      throw PrefixError("set: key terminates at an interior branch");
    const std::uint8_t nib = nibs[pos];
    // Recursion may reallocate the arena; re-resolve after the call.
    const std::uint32_t node_idx = ref.node;
    const Ref updated =
        set_rec(branch->children[nib], nibs, pos + 1, value);
    auto& fresh_branch = std::get<BranchNode>(arena_[node_idx]);
    fresh_branch.children[nib] = updated;
    std::array<std::optional<Hash32>, 16> kids;
    for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(fresh_branch.children[i]);
    ref.hash = hash_branch(kids);
    return ref;
  }

  auto& ext = std::get<ExtensionNode>(node);
  const std::size_t rest = nibs.size() - pos;
  const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
  if (cp == ext.path.size()) {
    const std::uint32_t node_idx = ref.node;
    const Ref updated = set_rec(ext.child, nibs, pos + cp, value);
    auto& fresh_ext = std::get<ExtensionNode>(arena_[node_idx]);
    fresh_ext.child = updated;
    ref.hash = hash_extension(fresh_ext.path, fresh_ext.child.hash);
    return ref;
  }
  if (cp == rest)
    throw PrefixError("set: key terminates inside an extension path");

  // Split this extension at nibble cp.
  const Nibbles shared = slice(ext.path, 0, cp);
  const std::uint8_t old_nib = ext.path[cp];
  const std::uint8_t new_nib = nibs[pos + cp];
  const Nibbles old_tail = slice(ext.path, cp + 1, ext.path.size() - cp - 1);
  const Ref old_child = ext.child;

  Ref old_side;
  if (old_tail.empty()) {
    // The branch points directly at the old extension's child; reuse
    // this node's slot for nothing — free it below.
    old_side = old_child;
    free_node(ref.node);
  } else {
    // Reuse this arena slot as the shortened extension.
    ext.path = old_tail;
    const Hash32 h = hash_extension(ext.path, ext.child.hash);
    old_side = Ref{h, ref.node, false};
  }

  LeafNode new_leaf{slice(nibs, pos + cp + 1, rest - cp - 1), value};
  const Hash32 new_leaf_hash = hash_leaf(new_leaf.suffix, new_leaf.value);
  const Ref new_ref{new_leaf_hash, alloc(Node{std::move(new_leaf)}), false};

  BranchNode branch;
  branch.children[old_nib] = old_side;
  branch.children[new_nib] = new_ref;
  std::array<std::optional<Hash32>, 16> kids;
  for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(branch.children[i]);
  const Ref branch_ref{hash_branch(kids), alloc(Node{std::move(branch)}), false};

  if (shared.empty()) return branch_ref;
  ExtensionNode top{shared, branch_ref};
  const Hash32 top_hash = hash_extension(top.path, top.child.hash);
  return Ref{top_hash, alloc(Node{std::move(top)}), false};
}

SealableTrie::Lookup SealableTrie::get(ByteView key, Hash32* value_out) const {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;
  const Ref* ref = &root_;
  while (true) {
    if (ref->sealed) return Lookup::kSealed;
    if (ref->is_empty()) return Lookup::kAbsent;
    const Node& node = arena_[ref->node];
    if (const auto* leaf = std::get_if<LeafNode>(&node)) {
      const Nibbles rest = slice(nibs, pos, nibs.size() - pos);
      if (leaf->suffix == rest) {
        if (value_out != nullptr) *value_out = leaf->value;
        return Lookup::kFound;
      }
      return Lookup::kAbsent;
    }
    if (const auto* branch = std::get_if<BranchNode>(&node)) {
      if (pos >= nibs.size()) return Lookup::kAbsent;
      ref = &branch->children[nibs[pos]];
      ++pos;
      continue;
    }
    const auto& ext = std::get<ExtensionNode>(node);
    const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
    if (cp != ext.path.size()) return Lookup::kAbsent;
    pos += cp;
    ref = &ext.child;
  }
}

void SealableTrie::seal(ByteView key) {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;

  // Walk down, recording the chain of (node index, child slot) so we
  // can propagate sealing upward.  Slot -1 means "extension child".
  struct Step {
    std::uint32_t node;
    int slot;  // 0..15 for branch children, -1 for extension child
  };
  std::vector<Step> path;

  Ref* ref = &root_;
  while (true) {
    if (ref->sealed) throw SealedError("seal: key already inside a sealed region");
    if (ref->is_empty()) throw NotFoundError("seal: key not present");
    Node& node = arena_[ref->node];
    if (auto* leaf = std::get_if<LeafNode>(&node)) {
      const Nibbles rest = slice(nibs, pos, nibs.size() - pos);
      if (leaf->suffix != rest) throw NotFoundError("seal: key not present");
      break;  // `ref` points at the leaf to seal
    }
    if (auto* branch = std::get_if<BranchNode>(&node)) {
      if (pos >= nibs.size()) throw NotFoundError("seal: key not present");
      path.push_back({ref->node, nibs[pos]});
      ref = &branch->children[nibs[pos]];
      ++pos;
      continue;
    }
    auto& ext = std::get<ExtensionNode>(node);
    const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
    if (cp != ext.path.size()) throw NotFoundError("seal: key not present");
    path.push_back({ref->node, -1});
    pos += cp;
    ref = &ext.child;
  }

  // Seal the leaf: drop its storage, keep the hash in the parent ref.
  free_node(ref->node);
  ref->node = kNil;
  ref->sealed = true;

  // Propagate: an extension whose child is sealed seals too; a branch
  // whose present children are all sealed seals too (paper §III-A).
  while (!path.empty()) {
    const Step step = path.back();
    path.pop_back();
    Node& node = arena_[step.node];

    bool seal_this = false;
    if (auto* branch = std::get_if<BranchNode>(&node)) {
      seal_this = true;
      for (const Ref& child : branch->children) {
        if (child.is_empty()) continue;
        if (!child.sealed) {
          seal_this = false;
          break;
        }
      }
    } else {
      seal_this = std::get<ExtensionNode>(node).child.sealed;
    }
    if (!seal_this) break;

    // Find the Ref in the parent (or root) that points at this node.
    Ref* owner = nullptr;
    if (path.empty()) {
      owner = &root_;
    } else {
      const Step parent = path.back();
      Node& parent_node = arena_[parent.node];
      if (parent.slot >= 0) {
        owner = &std::get<BranchNode>(parent_node)
                     .children[static_cast<std::size_t>(parent.slot)];
      } else {
        owner = &std::get<ExtensionNode>(parent_node).child;
      }
    }
    free_node(step.node);
    owner->node = kNil;
    owner->sealed = true;
  }
}

Proof SealableTrie::prove(ByteView key) const {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;
  Proof proof;

  const Ref* ref = &root_;
  while (true) {
    if (ref->sealed)
      throw SealedError("prove: key path enters a sealed region");
    if (ref->is_empty()) return proof;  // absence; possibly empty proof for empty trie
    const Node& node = arena_[ref->node];
    if (const auto* leaf = std::get_if<LeafNode>(&node)) {
      proof.nodes.emplace_back(ProofLeaf{leaf->suffix, leaf->value});
      return proof;
    }
    if (const auto* branch = std::get_if<BranchNode>(&node)) {
      ProofBranch pb;
      for (std::size_t i = 0; i < 16; ++i) pb.children[i] = ref_hash(branch->children[i]);
      proof.nodes.emplace_back(std::move(pb));
      if (pos >= nibs.size()) return proof;  // absence (interior end)
      const Ref& child = branch->children[nibs[pos]];
      ++pos;
      if (child.is_empty()) return proof;  // absence proven by missing child
      ref = &child;
      continue;
    }
    const auto& ext = std::get<ExtensionNode>(node);
    proof.nodes.emplace_back(ProofExtension{ext.path, ext.child.hash});
    const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
    if (cp != ext.path.size()) return proof;  // absence at divergence
    pos += cp;
    ref = &ext.child;
  }
}

TrieStats SealableTrie::stats() const {
  TrieStats s;
  auto count_ref = [&s](const Ref& r) {
    if (r.sealed) ++s.sealed_refs;
  };
  count_ref(root_);
  for (const Node& node : arena_) {
    if (const auto* leaf = std::get_if<LeafNode>(&node)) {
      ++s.leaf_count;
      s.byte_size += kNodeHeader + 3 + leaf->suffix.size() / 2 + 1 + 32;
    } else if (const auto* branch = std::get_if<BranchNode>(&node)) {
      ++s.branch_count;
      s.byte_size += kNodeHeader + 3;
      for (const Ref& child : branch->children) {
        count_ref(child);
        if (!child.is_empty()) s.byte_size += 33;
      }
    } else if (const auto* ext = std::get_if<ExtensionNode>(&node)) {
      ++s.extension_count;
      s.byte_size += kNodeHeader + 3 + ext->path.size() / 2 + 1 + 33;
      count_ref(ext->child);
    }
  }
  return s;
}

}  // namespace bmg::trie
