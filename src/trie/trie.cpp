#include "trie/trie.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/parallel.hpp"
#include "crypto/sha256.hpp"

namespace bmg::trie {

namespace {
/// Serialized size contribution of a node (mirrors the hash preimage
/// encodings plus a small per-node arena header).
constexpr std::size_t kNodeHeader = 4;
}  // namespace

std::uint32_t SealableTrie::alloc_leaf(LeafNode node) {
  std::uint32_t idx;
  if (!free_leaves_.empty()) {
    idx = free_leaves_.back();
    free_leaves_.pop_back();
    leaves_[idx] = std::move(node);
  } else {
    idx = static_cast<std::uint32_t>(leaves_.size());
    leaves_.push_back(std::move(node));
  }
  const std::uint32_t id = (static_cast<std::uint32_t>(kLeaf) << kKindShift) | idx;
  add_node_stats(id);
  return id;
}

std::uint32_t SealableTrie::alloc_branch(BranchNode node) {
  std::uint32_t idx;
  if (!free_branches_.empty()) {
    idx = free_branches_.back();
    free_branches_.pop_back();
    branches_[idx] = std::move(node);
  } else {
    idx = static_cast<std::uint32_t>(branches_.size());
    branches_.push_back(std::move(node));
  }
  const std::uint32_t id = (static_cast<std::uint32_t>(kBranch) << kKindShift) | idx;
  add_node_stats(id);
  return id;
}

std::uint32_t SealableTrie::alloc_ext(ExtensionNode node) {
  std::uint32_t idx;
  if (!free_exts_.empty()) {
    idx = free_exts_.back();
    free_exts_.pop_back();
    exts_[idx] = std::move(node);
  } else {
    idx = static_cast<std::uint32_t>(exts_.size());
    exts_.push_back(std::move(node));
  }
  const std::uint32_t id = (static_cast<std::uint32_t>(kExt) << kKindShift) | idx;
  add_node_stats(id);
  return id;
}

void SealableTrie::free_node(std::uint32_t node) {
  sub_node_stats(node);
  const std::uint32_t idx = index_of(node);
  switch (kind_of(node)) {
    case kLeaf:
      leaves_[idx] = LeafNode{};
      free_leaves_.push_back(idx);
      break;
    case kBranch:
      branches_[idx] = BranchNode{};
      free_branches_.push_back(idx);
      break;
    case kExt:
      exts_[idx] = ExtensionNode{};
      free_exts_.push_back(idx);
      break;
  }
}

void SealableTrie::add_node_stats(std::uint32_t node) {
  switch (kind_of(node)) {
    case kLeaf: {
      const LeafNode& n = leaf_at(node);
      ++stats_.leaf_count;
      stats_.byte_size += kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
      break;
    }
    case kBranch: {
      const BranchNode& n = branch_at(node);
      ++stats_.branch_count;
      stats_.byte_size += kNodeHeader + 3;
      for (const Ref& c : n.children) {
        if (c.sealed) ++stats_.sealed_refs;
        if (!c.is_empty()) stats_.byte_size += 33;
      }
      break;
    }
    case kExt: {
      const ExtensionNode& n = ext_at(node);
      ++stats_.extension_count;
      stats_.byte_size += kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
      if (n.child.sealed) ++stats_.sealed_refs;
      break;
    }
  }
}

void SealableTrie::sub_node_stats(std::uint32_t node) {
  switch (kind_of(node)) {
    case kLeaf: {
      const LeafNode& n = leaf_at(node);
      --stats_.leaf_count;
      stats_.byte_size -= kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
      break;
    }
    case kBranch: {
      const BranchNode& n = branch_at(node);
      --stats_.branch_count;
      stats_.byte_size -= kNodeHeader + 3;
      for (const Ref& c : n.children) {
        if (c.sealed) --stats_.sealed_refs;
        if (!c.is_empty()) stats_.byte_size -= 33;
      }
      break;
    }
    case kExt: {
      const ExtensionNode& n = ext_at(node);
      --stats_.extension_count;
      stats_.byte_size -= kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
      if (n.child.sealed) --stats_.sealed_refs;
      break;
    }
  }
}

std::optional<Hash32> SealableTrie::ref_hash(const Ref& ref) {
  if (ref.is_empty()) return std::nullopt;
  return ref.hash;
}

Hash32 SealableTrie::node_hash(std::uint32_t node) const {
  switch (kind_of(node)) {
    case kLeaf: {
      const LeafNode& n = leaf_at(node);
      return hash_leaf(n.suffix, n.value);
    }
    case kBranch: {
      const BranchNode& n = branch_at(node);
      std::array<std::optional<Hash32>, 16> kids;
      for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(n.children[i]);
      return hash_branch(kids);
    }
    default: {
      const ExtensionNode& n = ext_at(node);
      return hash_extension(n.path, n.child.hash);
    }
  }
}

void SealableTrie::append_node_preimage(Bytes& out, std::uint32_t node) const {
  switch (kind_of(node)) {
    case kLeaf: {
      const LeafNode& n = leaf_at(node);
      append_leaf_preimage(out, n.suffix, n.value);
      break;
    }
    case kBranch: {
      const BranchNode& n = branch_at(node);
      std::array<std::optional<Hash32>, 16> kids;
      for (std::size_t i = 0; i < 16; ++i) kids[i] = ref_hash(n.children[i]);
      append_branch_preimage(out, kids);
      break;
    }
    case kExt: {
      const ExtensionNode& n = ext_at(node);
      append_extension_preimage(out, n.path, n.child.hash);
      break;
    }
  }
}

void SealableTrie::ensure_committed() const {
  if (root_.dirty) const_cast<SealableTrie*>(this)->commit();
}

Hash32 SealableTrie::root_hash() const {
  ensure_committed();
  if (root_.is_empty()) return Hash32{};
  return root_.hash;
}

bool SealableTrie::empty() const noexcept { return root_.is_empty(); }

void SealableTrie::set(ByteView key, const Hash32& value) {
  const Nibbles nibs = to_nibbles(key);
  root_ = set_rec(root_, nibs, 0, value);
}

SealableTrie::Ref SealableTrie::set_rec(Ref ref, const Nibbles& nibs, std::size_t pos,
                                        const Hash32& value) {
  if (ref.sealed) throw SealedError("set: key path crosses a sealed region");

  if (ref.is_empty()) {
    LeafNode leaf{slice(nibs, pos, nibs.size() - pos), value};
    return Ref{Hash32{}, alloc_leaf(std::move(leaf)), false, true};
  }

  switch (kind_of(ref.node)) {
    case kLeaf: {
      LeafNode& leaf = leaf_at(ref.node);
      const std::size_t rest = nibs.size() - pos;
      const std::size_t cp = common_prefix(leaf.suffix, 0, nibs, pos);
      if (cp == leaf.suffix.size() && cp == rest) {
        // Same key: update in place; the hash is recomputed at commit.
        leaf.value = value;
        ref.dirty = true;
        return ref;
      }
      if (cp == leaf.suffix.size() || cp == rest)
        throw PrefixError("set: key is a prefix of an existing key (or vice versa)");

      // Split: branch at the divergence nibble, possibly under an extension.
      const std::uint8_t old_nib = leaf.suffix[cp];
      const std::uint8_t new_nib = nibs[pos + cp];
      const Nibbles shared = slice(leaf.suffix, 0, cp);

      // Shorten the existing leaf (reuse its arena slot).
      sub_node_stats(ref.node);
      leaf.suffix = slice(leaf.suffix, cp + 1, leaf.suffix.size() - cp - 1);
      add_node_stats(ref.node);
      const Ref old_ref{Hash32{}, ref.node, false, true};

      LeafNode new_leaf{slice(nibs, pos + cp + 1, rest - cp - 1), value};
      const Ref new_ref{Hash32{}, alloc_leaf(std::move(new_leaf)), false, true};

      BranchNode branch;
      branch.children[old_nib] = old_ref;
      branch.children[new_nib] = new_ref;
      const Ref branch_ref{Hash32{}, alloc_branch(std::move(branch)), false, true};

      if (shared.empty()) return branch_ref;
      ExtensionNode ext{shared, branch_ref};
      return Ref{Hash32{}, alloc_ext(std::move(ext)), false, true};
    }

    case kBranch: {
      if (pos == nibs.size())
        throw PrefixError("set: key terminates at an interior branch");
      const std::uint8_t nib = nibs[pos];
      // Recursion may reallocate the arena; re-resolve after the call.
      const std::uint32_t node_id = ref.node;
      const Ref updated = set_rec(branch_at(node_id).children[nib], nibs, pos + 1, value);
      BranchNode& fresh = branch_at(node_id);
      if (fresh.children[nib].is_empty()) stats_.byte_size += 33;
      fresh.children[nib] = updated;
      ref.dirty = true;
      return ref;
    }

    default: {
      ExtensionNode& ext = ext_at(ref.node);
      const std::size_t rest = nibs.size() - pos;
      const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
      if (cp == ext.path.size()) {
        const std::uint32_t node_id = ref.node;
        const Ref updated = set_rec(ext.child, nibs, pos + cp, value);
        ext_at(node_id).child = updated;
        ref.dirty = true;
        return ref;
      }
      if (cp == rest)
        throw PrefixError("set: key terminates inside an extension path");

      // Split this extension at nibble cp.
      const Nibbles shared = slice(ext.path, 0, cp);
      const std::uint8_t old_nib = ext.path[cp];
      const std::uint8_t new_nib = nibs[pos + cp];
      const Nibbles old_tail = slice(ext.path, cp + 1, ext.path.size() - cp - 1);
      const Ref old_child = ext.child;

      Ref old_side;
      if (old_tail.empty()) {
        // The branch points directly at the old extension's child.
        old_side = old_child;
        free_node(ref.node);
      } else {
        // Reuse this arena slot as the shortened extension.
        sub_node_stats(ref.node);
        ext.path = old_tail;
        add_node_stats(ref.node);
        old_side = Ref{Hash32{}, ref.node, false, true};
      }

      LeafNode new_leaf{slice(nibs, pos + cp + 1, rest - cp - 1), value};
      const Ref new_ref{Hash32{}, alloc_leaf(std::move(new_leaf)), false, true};

      BranchNode branch;
      branch.children[old_nib] = old_side;
      branch.children[new_nib] = new_ref;
      const Ref branch_ref{Hash32{}, alloc_branch(std::move(branch)), false, true};

      if (shared.empty()) return branch_ref;
      ExtensionNode top{shared, branch_ref};
      return Ref{Hash32{}, alloc_ext(std::move(top)), false, true};
    }
  }
}

void SealableTrie::commit() {
  if (!root_.dirty) return;

  // Collect every dirty ref with its depth.  commit() allocates no
  // nodes, so Ref pointers into the arenas stay stable throughout.
  struct Item {
    Ref* ref;
    std::uint32_t depth;
  };
  std::vector<Item> dirty;
  std::vector<Item> stack;
  stack.push_back({&root_, 0});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    dirty.push_back(it);
    const Ref& r = *it.ref;
    switch (kind_of(r.node)) {
      case kBranch:
        for (Ref& c : branch_at(r.node).children)
          if (c.dirty) stack.push_back({&c, it.depth + 1});
        break;
      case kExt: {
        Ref& c = ext_at(r.node).child;
        if (c.dirty) stack.push_back({&c, it.depth + 1});
        break;
      }
      default:
        break;
    }
  }

  // Deepest level first, so every child hash is final before its
  // parent's preimage is built.  Refs within one level are
  // independent and are hashed as a single multi-lane SHA-256 batch.
  std::stable_sort(dirty.begin(), dirty.end(),
                   [](const Item& a, const Item& b) { return a.depth > b.depth; });

  // Nodes within one level are independent — siblings or cousins — so
  // a level can be hashed as one multi-lane SHA-256 batch, and a wide
  // level can further shard preimage building + hashing across the
  // fork-join workers.  Shards write disjoint Ref objects, and every
  // node's hash depends only on its own (already final) children, so
  // the committed hashes are byte-identical for any thread count.
  constexpr std::size_t kParallelLevelMin = 64;
  Bytes scratch;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::vector<ByteView> views;
  std::vector<Hash32> hashes;
  std::size_t lo = 0;
  while (lo < dirty.size()) {
    std::size_t hi = lo;
    while (hi < dirty.size() && dirty[hi].depth == dirty[lo].depth) ++hi;
    const std::size_t n = hi - lo;
    if (n == 1) {
      // Lone node on this level: the fixed-shape one-shot hasher
      // (stack preimage) beats building a batch of one.
      Ref& r = *dirty[lo].ref;
      r.hash = node_hash(r.node);
      r.dirty = false;
    } else if (n >= kParallelLevelMin && parallel::thread_count() > 1 &&
               !parallel::in_parallel_region()) {
      parallel::parallel_for(
          n, kParallelLevelMin,
          [&](std::size_t begin, std::size_t end, std::size_t) {
            // Per-shard scratch; the nested sha256_batch serializes.
            Bytes pre;
            std::vector<std::pair<std::size_t, std::size_t>> offs;
            offs.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
              const std::size_t off = pre.size();
              append_node_preimage(pre, dirty[lo + i].ref->node);
              offs.emplace_back(off, pre.size() - off);
            }
            std::vector<ByteView> v(end - begin);
            std::vector<Hash32> h(end - begin);
            for (std::size_t i = 0; i < v.size(); ++i)
              v[i] = ByteView{pre.data() + offs[i].first, offs[i].second};
            crypto::sha256_batch(v.data(), v.size(), h.data());
            for (std::size_t i = 0; i < v.size(); ++i) {
              dirty[lo + begin + i].ref->hash = h[i];
              dirty[lo + begin + i].ref->dirty = false;
            }
          });
    } else {
      scratch.clear();
      spans.clear();
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t off = scratch.size();
        append_node_preimage(scratch, dirty[i].ref->node);
        spans.emplace_back(off, scratch.size() - off);
      }
      views.resize(n);
      hashes.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        views[i] = ByteView{scratch.data() + spans[i].first, spans[i].second};
      crypto::sha256_batch(views.data(), n, hashes.data());
      for (std::size_t i = 0; i < n; ++i) {
        dirty[lo + i].ref->hash = hashes[i];
        dirty[lo + i].ref->dirty = false;
      }
    }
    lo = hi;
  }
}

SealableTrie::Lookup SealableTrie::get(ByteView key, Hash32* value_out) const {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;
  const Ref* ref = &root_;
  while (true) {
    if (ref->sealed) return Lookup::kSealed;
    if (ref->is_empty()) return Lookup::kAbsent;
    switch (kind_of(ref->node)) {
      case kLeaf: {
        const LeafNode& leaf = leaf_at(ref->node);
        const Nibbles rest = slice(nibs, pos, nibs.size() - pos);
        if (leaf.suffix == rest) {
          if (value_out != nullptr) *value_out = leaf.value;
          return Lookup::kFound;
        }
        return Lookup::kAbsent;
      }
      case kBranch: {
        const BranchNode& branch = branch_at(ref->node);
        if (pos >= nibs.size()) return Lookup::kAbsent;
        ref = &branch.children[nibs[pos]];
        ++pos;
        break;
      }
      default: {
        const ExtensionNode& ext = ext_at(ref->node);
        const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
        if (cp != ext.path.size()) return Lookup::kAbsent;
        pos += cp;
        ref = &ext.child;
        break;
      }
    }
  }
}

void SealableTrie::seal(ByteView key) {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;

  // Walk down, recording the chain of (node id, child slot) so we can
  // propagate sealing upward.  Slot -1 means "extension child".
  struct Step {
    std::uint32_t node;
    int slot;  // 0..15 for branch children, -1 for extension child
  };
  std::vector<Step> path;

  Ref* ref = &root_;
  while (true) {
    if (ref->sealed) throw SealedError("seal: key already inside a sealed region");
    if (ref->is_empty()) throw NotFoundError("seal: key not present");
    bool done = false;
    switch (kind_of(ref->node)) {
      case kLeaf: {
        const LeafNode& leaf = leaf_at(ref->node);
        const Nibbles rest = slice(nibs, pos, nibs.size() - pos);
        if (leaf.suffix != rest) throw NotFoundError("seal: key not present");
        done = true;  // `ref` points at the leaf to seal
        break;
      }
      case kBranch: {
        BranchNode& branch = branch_at(ref->node);
        if (pos >= nibs.size()) throw NotFoundError("seal: key not present");
        path.push_back({ref->node, nibs[pos]});
        ref = &branch.children[nibs[pos]];
        ++pos;
        break;
      }
      default: {
        ExtensionNode& ext = ext_at(ref->node);
        const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
        if (cp != ext.path.size()) throw NotFoundError("seal: key not present");
        path.push_back({ref->node, -1});
        pos += cp;
        ref = &ext.child;
        break;
      }
    }
    if (done) break;
  }

  // Seal the leaf: drop its storage, keep the hash in the parent ref.
  // A dirty ref's recorded hash is stale, so fix it before the node's
  // contents disappear — sealing must preserve the (future) root.
  if (ref->dirty) {
    ref->hash = node_hash(ref->node);
    ref->dirty = false;
  }
  free_node(ref->node);
  ref->node = kNil;
  ref->sealed = true;
  ++stats_.sealed_refs;

  // Propagate: an extension whose child is sealed seals too; a branch
  // whose present children are all sealed seals too (paper §III-A).
  while (!path.empty()) {
    const Step step = path.back();
    path.pop_back();

    bool seal_this = false;
    if (kind_of(step.node) == kBranch) {
      seal_this = true;
      for (const Ref& child : branch_at(step.node).children) {
        if (child.is_empty()) continue;
        if (!child.sealed) {
          seal_this = false;
          break;
        }
      }
    } else {
      seal_this = ext_at(step.node).child.sealed;
    }
    if (!seal_this) break;

    // Find the Ref in the parent (or root) that points at this node.
    Ref* owner = nullptr;
    if (path.empty()) {
      owner = &root_;
    } else {
      const Step parent = path.back();
      if (parent.slot >= 0) {
        owner = &branch_at(parent.node).children[static_cast<std::size_t>(parent.slot)];
      } else {
        owner = &ext_at(parent.node).child;
      }
    }
    // All children of this node are sealed with valid hashes, so its
    // own hash can be finalized on the spot if it was pending.
    if (owner->dirty) {
      owner->hash = node_hash(step.node);
      owner->dirty = false;
    }
    free_node(step.node);
    owner->node = kNil;
    owner->sealed = true;
    ++stats_.sealed_refs;
  }
}

Proof SealableTrie::prove(ByteView key) const {
  ensure_committed();
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;
  Proof proof;

  const Ref* ref = &root_;
  while (true) {
    if (ref->sealed)
      throw SealedError("prove: key path enters a sealed region");
    if (ref->is_empty()) return proof;  // absence; possibly empty proof for empty trie
    switch (kind_of(ref->node)) {
      case kLeaf: {
        const LeafNode& leaf = leaf_at(ref->node);
        proof.nodes.emplace_back(ProofLeaf{leaf.suffix, leaf.value});
        return proof;
      }
      case kBranch: {
        const BranchNode& branch = branch_at(ref->node);
        ProofBranch pb;
        for (std::size_t i = 0; i < 16; ++i) pb.children[i] = ref_hash(branch.children[i]);
        proof.nodes.emplace_back(std::move(pb));
        if (pos >= nibs.size()) return proof;  // absence (interior end)
        const Ref& child = branch.children[nibs[pos]];
        ++pos;
        if (child.is_empty()) return proof;  // absence proven by missing child
        ref = &child;
        break;
      }
      default: {
        const ExtensionNode& ext = ext_at(ref->node);
        proof.nodes.emplace_back(ProofExtension{ext.path, ext.child.hash});
        const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
        if (cp != ext.path.size()) return proof;  // absence at divergence
        pos += cp;
        ref = &ext.child;
        break;
      }
    }
  }
}

TrieStats SealableTrie::recompute_stats() const {
  TrieStats s;
  if (root_.sealed) ++s.sealed_refs;
  std::vector<std::uint32_t> stack;
  if (root_.is_live()) stack.push_back(root_.node);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    switch (kind_of(id)) {
      case kLeaf: {
        const LeafNode& n = leaf_at(id);
        ++s.leaf_count;
        s.byte_size += kNodeHeader + 3 + n.suffix.size() / 2 + 1 + 32;
        break;
      }
      case kBranch: {
        const BranchNode& n = branch_at(id);
        ++s.branch_count;
        s.byte_size += kNodeHeader + 3;
        for (const Ref& c : n.children) {
          if (c.sealed) ++s.sealed_refs;
          if (!c.is_empty()) s.byte_size += 33;
          if (c.is_live()) stack.push_back(c.node);
        }
        break;
      }
      default: {
        const ExtensionNode& n = ext_at(id);
        ++s.extension_count;
        s.byte_size += kNodeHeader + 3 + n.path.size() / 2 + 1 + 33;
        if (n.child.sealed) ++s.sealed_refs;
        if (n.child.is_live()) stack.push_back(n.child.node);
        break;
      }
    }
  }
  return s;
}

void SealableTrie::debug_check_stats() const {
  const TrieStats live = recompute_stats();
  if (live == stats_) return;
  const auto diff = [](const char* field, std::size_t got, std::size_t want) {
    return std::string(field) + " cached=" + std::to_string(got) +
           " live=" + std::to_string(want) + "; ";
  };
  std::string msg = "TrieStats drift: ";
  if (live.leaf_count != stats_.leaf_count)
    msg += diff("leaf_count", stats_.leaf_count, live.leaf_count);
  if (live.branch_count != stats_.branch_count)
    msg += diff("branch_count", stats_.branch_count, live.branch_count);
  if (live.extension_count != stats_.extension_count)
    msg += diff("extension_count", stats_.extension_count, live.extension_count);
  if (live.sealed_refs != stats_.sealed_refs)
    msg += diff("sealed_refs", stats_.sealed_refs, live.sealed_refs);
  if (live.byte_size != stats_.byte_size)
    msg += diff("byte_size", stats_.byte_size, live.byte_size);
  throw std::logic_error(msg);
}

}  // namespace bmg::trie
