// Immutable trie snapshots and the concurrent proof service.
//
// TrieSnapshot is the per-committed-root view published by
// SealableTrie::snapshot() (shadow paging: a frozen copy of the
// chunked page tables plus the root ref — no node data is copied).
// Copying a snapshot is a shared_ptr copy; the guest contract keeps
// one per recent block height instead of a deep trie copy per block.
// A snapshot's pages are immutable by construction, so get()/prove()
// are safe from any thread while the live trie commits the next
// block, and the proofs produced are byte-identical to what the live
// trie would have produced at that root.
//
// ProofService runs proof generation off the block-producing thread:
// submit() hands a (snapshot, keys) batch to a worker and returns a
// future, so relayers can have the previous block's proofs built
// while the next block commits.  The static prove_batch() is the
// synchronous form and shards the keys across the bmg::parallel pool;
// results are ordered by key index, keeping output independent of
// thread count.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "trie/trie.hpp"

namespace bmg::trie {

class TrieSnapshot {
 public:
  /// Null snapshot: valid() is false, reads throw TrieError.
  TrieSnapshot() = default;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

  /// Root commitment the snapshot was published at (all-zero for a
  /// snapshot of the empty trie).
  [[nodiscard]] Hash32 root_hash() const;

  /// Point lookup at the snapshot's root.  Thread-safe.
  [[nodiscard]] Lookup get(ByteView key, Hash32* value_out = nullptr) const;

  /// (Non-)membership proof at the snapshot's root; byte-identical to
  /// the live trie's prove() at the same root.  Thread-safe.  Throws
  /// SealedError if the path enters a sealed region.
  [[nodiscard]] Proof prove(ByteView key) const;

  /// Storage accounting as of the snapshot.
  [[nodiscard]] TrieStats stats() const;

 private:
  friend class SealableTrie;

  struct Impl {
    std::shared_ptr<StoreCore> core;
    TableSet tables;
    RefRec root;
    TrieStats trie_stats;
    std::uint32_t epoch = 0;

    ~Impl() {
      // Releasing the epoch lets the store reclaim pages that were
      // parked while this snapshot could still reference them.
      if (core != nullptr) core->release_epoch(epoch);
    }
  };

  explicit TrieSnapshot(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  [[nodiscard]] const Impl& impl() const;

  std::shared_ptr<const Impl> impl_;
};

/// Background proof generation against immutable snapshots.  One
/// worker thread drains submitted batches in FIFO order; each batch
/// resolves its future with proofs in key order (or the first error).
class ProofService {
 public:
  ProofService();
  ~ProofService();
  ProofService(const ProofService&) = delete;
  ProofService& operator=(const ProofService&) = delete;

  /// Enqueues a proof batch.  The returned future yields one proof per
  /// key, in key order; a SealedError on any key fails the batch.
  [[nodiscard]] std::future<std::vector<Proof>> submit(TrieSnapshot snapshot,
                                                       std::vector<Bytes> keys);

  /// Synchronous batch proving, sharded across the bmg::parallel pool
  /// when it is free.  Output is indexed by key, so the bytes are
  /// identical for any thread count.
  [[nodiscard]] static std::vector<Proof> prove_batch(const TrieSnapshot& snapshot,
                                                     const std::vector<Bytes>& keys);

 private:
  struct Job {
    TrieSnapshot snapshot;
    std::vector<Bytes> keys;
    std::promise<std::vector<Proof>> done;
  };

  void run();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace bmg::trie
