// Paged backing storage for the sealable trie's node arenas.
//
// The trie no longer keeps every node in growable in-RAM slabs:
// nodes live in fixed-size *pages* (contiguous runs of same-kind
// records, so sibling spines written together stay packed together),
// and pages are owned by a PageStore.  Two backends share the
// interface:
//
//   * InMemoryPageStore — every page resident, pin() is a pointer
//     lookup.  The default for tests, determinism checks, and every
//     workload that fits in RAM (identical behaviour to the old
//     slabs, minus their realloc copies).
//   * FilePageStore — a bounded LRU of resident frames backed by an
//     unlinked spill file.  Cold pages are written out and re-read on
//     demand, so a trie with 10^8+ entries no longer needs to fit in
//     RAM.  Freed pages are hole-punched out of the file where the
//     filesystem supports it, making sealing *measurable* space
//     reclamation (the paper's §III-A claim).
//
// Page contents are identical across backends by construction — the
// store never interprets record bytes — which is what the trie-page
// determinism CI job (roots + proofs diffed across backends and
// thread counts) pins.
//
// Thread safety: all methods are safe to call concurrently.  A pinned
// page is never evicted or moved, so the returned frame pointer stays
// valid until the matching unpin(); immutable (snapshotted) pages may
// be pinned and read from proof-service threads while the live trie
// allocates and writes elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace bmg::trie {

using PageId = std::uint32_t;
inline constexpr PageId kNoPage = 0xFFFFFFFFu;

struct PageStoreConfig {
  enum class Backend { kMemory, kFile };
  Backend backend = Backend::kMemory;
  /// Fixed page size in bytes.  Small values (a few records) are
  /// useful in tests to force page-boundary and eviction coverage.
  std::size_t page_bytes = 16 * 1024;
  /// FilePageStore only: number of page frames kept resident.  Pinned
  /// frames can push residency above this bound temporarily (a pin is
  /// a promise the pointer stays valid), so it must comfortably exceed
  /// one operation's working set — a root-to-leaf spine plus, during
  /// commit(), the pages holding that block's dirty refs.
  std::size_t max_resident_pages = 4096;
  /// FilePageStore only: spill file path.  Empty uses an anonymous
  /// unlinked temporary in $TMPDIR (freed by the OS on process exit).
  std::string file_path;
};

/// Counters behind the "pages freed vs seal rate" metric (§V-D
/// extension) and the out-of-core residency accounting.
struct PageStoreStats {
  std::size_t page_bytes = 0;
  std::size_t pages_allocated = 0;  ///< cumulative alloc() calls
  std::size_t pages_freed = 0;      ///< cumulative free_page() calls
  std::size_t pages_live = 0;       ///< currently allocated
  std::size_t resident_pages = 0;   ///< frames in RAM right now
  std::size_t pinned_pages = 0;     ///< frames with an active pin
  std::size_t evictions = 0;        ///< cumulative frames dropped to disk
  std::size_t faults = 0;           ///< cumulative re-reads from disk
  std::size_t holes_punched = 0;    ///< freed pages returned to the fs
  std::size_t spill_bytes = 0;      ///< high-water spill-file size
  [[nodiscard]] std::size_t resident_bytes() const { return resident_pages * page_bytes; }
};

class PageStore {
 public:
  virtual ~PageStore() = default;

  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }

  /// Allocates a zero-filled page (recycling freed ids first).
  [[nodiscard]] virtual PageId alloc() = 0;

  /// Returns `page` to the free list.  The page must be unpinned.
  virtual void free_page(PageId page) = 0;

  /// Makes `page` resident and pins it; the pointer stays valid (and
  /// the frame un-evictable) until the matching unpin().  Pins nest.
  [[nodiscard]] virtual std::uint8_t* pin(PageId page) = 0;

  /// Releases one pin.  `dirty` marks the frame as modified since it
  /// was last written to the backing file (ignored by the in-RAM
  /// backend, which has no backing file).
  virtual void unpin(PageId page, bool dirty) = 0;

  [[nodiscard]] virtual PageStoreStats stats() const = 0;

  [[nodiscard]] static std::unique_ptr<PageStore> create(const PageStoreConfig& cfg);

 protected:
  explicit PageStore(std::size_t page_bytes) : page_bytes_(page_bytes) {}

 private:
  std::size_t page_bytes_;
};

/// RAII pin: resolves a page to a frame pointer for the lifetime of
/// the guard.  Movable so walkers can hand pins up a call chain.
class PagePin {
 public:
  PagePin() = default;
  PagePin(PageStore& store, PageId page)
      : store_(&store), page_(page), data_(store.pin(page)) {}
  PagePin(PagePin&& other) noexcept
      : store_(other.store_), page_(other.page_), data_(other.data_),
        dirty_(other.dirty_) {
    other.store_ = nullptr;
  }
  PagePin& operator=(PagePin&& other) noexcept {
    if (this != &other) {
      reset();
      store_ = other.store_;
      page_ = other.page_;
      data_ = other.data_;
      dirty_ = other.dirty_;
      other.store_ = nullptr;
    }
    return *this;
  }
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;
  ~PagePin() { reset(); }

  void reset() {
    if (store_ != nullptr) store_->unpin(page_, dirty_);
    store_ = nullptr;
    data_ = nullptr;
  }

  [[nodiscard]] std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] PageId page() const noexcept { return page_; }
  [[nodiscard]] bool valid() const noexcept { return store_ != nullptr; }
  void mark_dirty() noexcept { dirty_ = true; }

 private:
  PageStore* store_ = nullptr;
  PageId page_ = kNoPage;
  std::uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace bmg::trie
