#include "trie/snapshot.hpp"

#include <utility>

#include "common/parallel.hpp"

namespace bmg::trie {

const TrieSnapshot::Impl& TrieSnapshot::impl() const {
  if (impl_ == nullptr) throw TrieError("snapshot: null snapshot");
  return *impl_;
}

Hash32 TrieSnapshot::root_hash() const {
  const Impl& im = impl();
  if (im.root.is_empty()) return Hash32{};
  return im.root.hash;
}

Lookup TrieSnapshot::get(ByteView key, Hash32* value_out) const {
  const Impl& im = impl();
  return walk_get(*im.core, im.tables, im.root, key, value_out);
}

Proof TrieSnapshot::prove(ByteView key) const {
  const Impl& im = impl();
  return walk_prove(*im.core, im.tables, im.root, key);
}

TrieStats TrieSnapshot::stats() const { return impl().trie_stats; }

// ---------------------------------------------------------------------------
// ProofService

ProofService::ProofService() : worker_([this] { run(); }) {}

ProofService::~ProofService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<std::vector<Proof>> ProofService::submit(TrieSnapshot snapshot,
                                                     std::vector<Bytes> keys) {
  Job job;
  job.snapshot = std::move(snapshot);
  job.keys = std::move(keys);
  std::future<std::vector<Proof>> fut = job.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

void ProofService::run() {
  // The worker stays off the fork-join pool: its proving inlines any
  // nested parallel_for, leaving the single dispatch slot to the
  // committing thread it runs concurrently with.
  parallel::SerialRegion serial;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job.done.set_value(prove_batch(job.snapshot, job.keys));
    } catch (...) {
      job.done.set_exception(std::current_exception());
    }
  }
}

std::vector<Proof> ProofService::prove_batch(const TrieSnapshot& snapshot,
                                             const std::vector<Bytes>& keys) {
  std::vector<Proof> out(keys.size());
  constexpr std::size_t kMinPerShard = 16;
  if (keys.size() >= 2 * kMinPerShard && parallel::thread_count() > 1 &&
      !parallel::in_parallel_region()) {
    parallel::parallel_for(keys.size(), kMinPerShard,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             for (std::size_t i = begin; i < end; ++i)
                               out[i] = snapshot.prove(keys[i]);
                           });
  } else {
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = snapshot.prove(keys[i]);
  }
  return out;
}

}  // namespace bmg::trie
