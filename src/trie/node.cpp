#include "trie/node.hpp"

#include "crypto/sha256.hpp"

namespace bmg::trie {

namespace {
constexpr std::uint8_t kTagLeaf = 0x00;
constexpr std::uint8_t kTagBranch = 0x01;
constexpr std::uint8_t kTagExtension = 0x02;

/// Stack budget for the fixed-shape preimage fast path.  Branch
/// preimages are at most 1 + 2 + 16*32 = 515 bytes; leaf/extension
/// preimages fit whenever the nibble path is under ~1 KiB (any
/// hashed/IBC key).  Longer paths take the heap fallback.
constexpr std::size_t kInlinePreimage = 1024;

std::size_t append_nibbles(std::uint8_t* out, ByteView n) {
  out[0] = static_cast<std::uint8_t>(n.size() >> 8);
  out[1] = static_cast<std::uint8_t>(n.size());
  std::copy(n.begin(), n.end(), out + 2);
  return 2 + n.size();
}
}  // namespace

// The hash_* functions are the trie's three fixed-shape one-shot
// hashers: they lay the canonical preimage out in a stack buffer and
// hand it to the one-shot Sha256::digest, avoiding both the Encoder
// heap allocation and the streaming-update state machine.

Hash32 hash_leaf(ByteView suffix_nibbles, const Hash32& value) {
  std::uint8_t buf[kInlinePreimage];
  if (3 + suffix_nibbles.size() + 32 <= sizeof(buf)) {
    buf[0] = kTagLeaf;
    std::size_t len = 1 + append_nibbles(buf + 1, suffix_nibbles);
    std::copy(value.bytes.begin(), value.bytes.end(), buf + len);
    len += 32;
    return crypto::Sha256::digest(ByteView{buf, len});
  }
  Bytes pre;
  append_leaf_preimage(pre, suffix_nibbles, value);
  return crypto::Sha256::digest(pre);
}

Hash32 hash_leaf(const Nibbles& suffix, const Hash32& value) {
  return hash_leaf(ByteView{suffix.data(), suffix.size()}, value);
}

Hash32 hash_branch(const std::array<std::optional<Hash32>, 16>& children) {
  std::uint8_t buf[515];
  buf[0] = kTagBranch;
  std::uint16_t bitmap = 0;
  for (std::size_t i = 0; i < 16; ++i)
    if (children[i]) bitmap = static_cast<std::uint16_t>(bitmap | (1u << i));
  buf[1] = static_cast<std::uint8_t>(bitmap >> 8);
  buf[2] = static_cast<std::uint8_t>(bitmap);
  std::size_t len = 3;
  for (std::size_t i = 0; i < 16; ++i) {
    if (!children[i]) continue;
    std::copy(children[i]->bytes.begin(), children[i]->bytes.end(), buf + len);
    len += 32;
  }
  return crypto::Sha256::digest(ByteView{buf, len});
}

Hash32 hash_extension(ByteView path_nibbles, const Hash32& child) {
  std::uint8_t buf[kInlinePreimage];
  if (3 + path_nibbles.size() + 32 <= sizeof(buf)) {
    buf[0] = kTagExtension;
    std::size_t len = 1 + append_nibbles(buf + 1, path_nibbles);
    std::copy(child.bytes.begin(), child.bytes.end(), buf + len);
    len += 32;
    return crypto::Sha256::digest(ByteView{buf, len});
  }
  Bytes pre;
  append_extension_preimage(pre, path_nibbles, child);
  return crypto::Sha256::digest(pre);
}

Hash32 hash_extension(const Nibbles& path, const Hash32& child) {
  return hash_extension(ByteView{path.data(), path.size()}, child);
}

void append_leaf_preimage(Bytes& out, ByteView suffix_nibbles, const Hash32& value) {
  out.push_back(kTagLeaf);
  out.push_back(static_cast<std::uint8_t>(suffix_nibbles.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(suffix_nibbles.size()));
  out.insert(out.end(), suffix_nibbles.begin(), suffix_nibbles.end());
  out.insert(out.end(), value.bytes.begin(), value.bytes.end());
}

void append_leaf_preimage(Bytes& out, const Nibbles& suffix, const Hash32& value) {
  append_leaf_preimage(out, ByteView{suffix.data(), suffix.size()}, value);
}

void append_branch_preimage(Bytes& out,
                            const std::array<std::optional<Hash32>, 16>& children) {
  out.push_back(kTagBranch);
  std::uint16_t bitmap = 0;
  for (std::size_t i = 0; i < 16; ++i)
    if (children[i]) bitmap = static_cast<std::uint16_t>(bitmap | (1u << i));
  out.push_back(static_cast<std::uint8_t>(bitmap >> 8));
  out.push_back(static_cast<std::uint8_t>(bitmap));
  for (std::size_t i = 0; i < 16; ++i)
    if (children[i]) out.insert(out.end(), children[i]->bytes.begin(), children[i]->bytes.end());
}

void append_extension_preimage(Bytes& out, ByteView path_nibbles, const Hash32& child) {
  out.push_back(kTagExtension);
  out.push_back(static_cast<std::uint8_t>(path_nibbles.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(path_nibbles.size()));
  out.insert(out.end(), path_nibbles.begin(), path_nibbles.end());
  out.insert(out.end(), child.bytes.begin(), child.bytes.end());
}

void append_extension_preimage(Bytes& out, const Nibbles& path, const Hash32& child) {
  append_extension_preimage(out, ByteView{path.data(), path.size()}, child);
}

Hash32 hash_proof_node(const ProofNode& node) {
  return std::visit(
      [](const auto& n) -> Hash32 {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, ProofLeaf>) {
          return hash_leaf(n.suffix, n.value);
        } else if constexpr (std::is_same_v<T, ProofBranch>) {
          return hash_branch(n.children);
        } else {
          return hash_extension(n.path, n.child);
        }
      },
      node);
}

Bytes Proof::serialize() const {
  Encoder e(byte_size());
  serialize_into(e);
  return e.take();
}

void Proof::serialize_into(Encoder& e) const {
  e.reserve(byte_size());
  e.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) {
    std::visit(
        [&e](const auto& n) {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, ProofLeaf>) {
            e.u8(kTagLeaf);
            encode_nibbles(e, n.suffix);
            e.hash(n.value);
          } else if constexpr (std::is_same_v<T, ProofBranch>) {
            e.u8(kTagBranch);
            std::uint16_t bitmap = 0;
            for (std::size_t i = 0; i < 16; ++i)
              if (n.children[i]) bitmap = static_cast<std::uint16_t>(bitmap | (1u << i));
            e.u16(bitmap);
            for (std::size_t i = 0; i < 16; ++i)
              if (n.children[i]) e.hash(*n.children[i]);
          } else {
            e.u8(kTagExtension);
            encode_nibbles(e, n.path);
            e.hash(n.child);
          }
        },
        node);
  }
}

Proof Proof::deserialize(ByteView data) {
  Decoder d(data);
  Proof p;
  const std::uint32_t count = d.u32();
  if (count > 4096) throw CodecError("proof: implausible node count");
  p.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t tag = d.u8();
    switch (tag) {
      case kTagLeaf: {
        ProofLeaf n;
        n.suffix = decode_nibbles(d);
        n.value = d.hash();
        p.nodes.emplace_back(std::move(n));
        break;
      }
      case kTagBranch: {
        ProofBranch n;
        const std::uint16_t bitmap = d.u16();
        for (std::size_t j = 0; j < 16; ++j)
          if (bitmap & (1u << j)) n.children[j] = d.hash();
        p.nodes.emplace_back(std::move(n));
        break;
      }
      case kTagExtension: {
        ProofExtension n;
        n.path = decode_nibbles(d);
        n.child = d.hash();
        p.nodes.emplace_back(std::move(n));
        break;
      }
      default:
        throw CodecError("proof: unknown node tag");
    }
  }
  d.expect_done();
  return p;
}

std::size_t Proof::byte_size() const {
  std::size_t n = 4;  // node count
  for (const auto& node : nodes) {
    n += 1;  // tag
    std::visit(
        [&n](const auto& p) {
          using T = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<T, ProofLeaf>) {
            n += 2 + p.suffix.size() + 32;
          } else if constexpr (std::is_same_v<T, ProofBranch>) {
            n += 2;
            for (const auto& child : p.children)
              if (child) n += 32;
          } else {
            n += 2 + p.path.size() + 32;
          }
        },
        node);
  }
  return n;
}

VerifyOutcome verify_proof(const Hash32& root, ByteView key, const Proof& proof) {
  const Nibbles nibs = to_nibbles(key);
  std::size_t pos = 0;

  if (proof.nodes.empty()) {
    // Only the empty trie (zero root) proves absence with no nodes.
    if (root.is_zero()) return {VerifyOutcome::Kind::kAbsent, {}};
    return {VerifyOutcome::Kind::kInvalid, {}};
  }

  Hash32 expected = root;
  for (std::size_t i = 0; i < proof.nodes.size(); ++i) {
    const ProofNode& node = proof.nodes[i];
    if (hash_proof_node(node) != expected) return {VerifyOutcome::Kind::kInvalid, {}};
    const bool last = (i + 1 == proof.nodes.size());

    if (const auto* leaf = std::get_if<ProofLeaf>(&node)) {
      if (!last) return {VerifyOutcome::Kind::kInvalid, {}};
      const Nibbles rest = slice(nibs, pos, nibs.size() - pos);
      if (leaf->suffix == rest) return {VerifyOutcome::Kind::kFound, leaf->value};
      // A leaf with a different suffix at this position proves the key
      // is absent from the (prefix-free) trie.
      return {VerifyOutcome::Kind::kAbsent, {}};
    }

    if (const auto* branch = std::get_if<ProofBranch>(&node)) {
      if (pos >= nibs.size()) return {VerifyOutcome::Kind::kInvalid, {}};
      const std::uint8_t nib = nibs[pos];
      ++pos;
      const auto& child = branch->children[nib];
      if (!child) {
        // Missing child proves absence — but only if the proof stops here.
        if (!last) return {VerifyOutcome::Kind::kInvalid, {}};
        return {VerifyOutcome::Kind::kAbsent, {}};
      }
      if (last) return {VerifyOutcome::Kind::kInvalid, {}};
      expected = *child;
      continue;
    }

    const auto& ext = std::get<ProofExtension>(node);
    const std::size_t cp = common_prefix(ext.path, 0, nibs, pos);
    if (cp == ext.path.size()) {
      if (last) return {VerifyOutcome::Kind::kInvalid, {}};
      pos += cp;
      expected = ext.child;
      continue;
    }
    // Divergence inside the extension path proves absence.
    if (!last) return {VerifyOutcome::Kind::kInvalid, {}};
    return {VerifyOutcome::Kind::kAbsent, {}};
  }
  return {VerifyOutcome::Kind::kInvalid, {}};
}

}  // namespace bmg::trie
