#include "trie/nibbles.hpp"

#include <algorithm>
#include <stdexcept>

namespace bmg::trie {

Nibbles to_nibbles(ByteView key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (std::uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0xF);
  }
  return out;
}

std::size_t common_prefix(const Nibbles& a, std::size_t a_off, const Nibbles& b,
                          std::size_t b_off) {
  const std::size_t limit = std::min(a.size() - a_off, b.size() - b_off);
  std::size_t i = 0;
  while (i < limit && a[a_off + i] == b[b_off + i]) ++i;
  return i;
}

Nibbles slice(const Nibbles& n, std::size_t off, std::size_t len) {
  if (off + len > n.size()) throw std::out_of_range("nibble slice out of range");
  return Nibbles(n.begin() + off, n.begin() + off + len);
}

void encode_nibbles(Encoder& e, const Nibbles& n) {
  e.u16(static_cast<std::uint16_t>(n.size()));
  for (std::uint8_t nib : n) e.u8(nib);
}

Nibbles decode_nibbles(Decoder& d) {
  const std::uint16_t count = d.u16();
  Nibbles out;
  out.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t nib = d.u8();
    if (nib > 15) throw CodecError("nibble out of range");
    out.push_back(nib);
  }
  return out;
}

}  // namespace bmg::trie
