#include "trie/page_store.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace bmg::trie {

namespace {

class InMemoryPageStore final : public PageStore {
 public:
  explicit InMemoryPageStore(const PageStoreConfig& cfg) : PageStore(cfg.page_bytes) {
    auto table = std::make_unique<std::uint8_t*[]>(kInitialCap);
    table_.store(table.get(), std::memory_order_release);
    cap_ = kInitialCap;
    retired_tables_.push_back(std::move(table));
  }

  PageId alloc() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_allocated;
    ++stats_.pages_live;
    if (!free_.empty()) {
      const PageId id = free_.back();
      free_.pop_back();
      // Same buffer, recycled id: no reader can still reference it
      // (epoch reclamation in StoreCore), so the pointer stays stable
      // and pin() stays lock-free.
      std::memset(pages_[id].get(), 0, page_bytes());
      return id;
    }
    const auto id = static_cast<PageId>(pages_.size());
    if (pages_.size() == cap_) grow();
    pages_.push_back(std::make_unique<std::uint8_t[]>(page_bytes()));
    std::memset(pages_.back().get(), 0, page_bytes());
    table_.load(std::memory_order_relaxed)[id] = pages_.back().get();
    return id;
  }

  void free_page(PageId page) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_freed;
    --stats_.pages_live;
    free_.push_back(page);
  }

  std::uint8_t* pin(PageId page) override {
    // Lock-free: this is the hottest call in the trie (every node
    // access).  A page's buffer pointer never changes once its id is
    // published — grows swap in a copied table, recycled ids keep
    // their buffer — and the id handoff (trie mutation order, fork
    // join, snapshot publish) provides the happens-before for the
    // slot's contents.
    return table_.load(std::memory_order_acquire)[page];
  }

  void unpin(PageId, bool) override {}

  PageStoreStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    PageStoreStats s = stats_;
    s.page_bytes = page_bytes();
    s.resident_pages = s.pages_live;
    return s;
  }

 private:
  static constexpr std::size_t kInitialCap = 64;

  /// Doubles the pointer table.  The old table is retired, not freed:
  /// a concurrent pin() may still be reading it, and every entry it
  /// holds stays valid because buffer pointers are stable.
  void grow() {
    auto bigger = std::make_unique<std::uint8_t*[]>(cap_ * 2);
    std::uint8_t** old = table_.load(std::memory_order_relaxed);
    std::memcpy(bigger.get(), old, cap_ * sizeof(std::uint8_t*));
    table_.store(bigger.get(), std::memory_order_release);
    cap_ *= 2;
    retired_tables_.push_back(std::move(bigger));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::uint8_t[]>> pages_;  ///< buffer owner, by id
  std::atomic<std::uint8_t**> table_{nullptr};          ///< lock-free id -> buffer
  std::size_t cap_ = 0;
  std::vector<std::unique_ptr<std::uint8_t*[]>> retired_tables_;
  std::vector<PageId> free_;
  PageStoreStats stats_;
};

/// Bounded-residency backend: an LRU of page frames over an unlinked
/// spill file.  Eviction picks the least-recently-pinned unpinned
/// frame, writing it out only when dirty.
class FilePageStore final : public PageStore {
 public:
  explicit FilePageStore(const PageStoreConfig& cfg)
      : PageStore(cfg.page_bytes),
        capacity_(cfg.max_resident_pages == 0 ? 1 : cfg.max_resident_pages) {
    if (cfg.file_path.empty()) {
      std::FILE* f = std::tmpfile();
      if (f == nullptr) throw std::runtime_error("FilePageStore: tmpfile() failed");
      // Keep our own descriptor; the FILE's buffering is never used.
      fd_ = ::dup(::fileno(f));
      std::fclose(f);
    } else {
      fd_ = ::open(cfg.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    }
    if (fd_ < 0) throw std::runtime_error("FilePageStore: cannot open spill file");
  }

  ~FilePageStore() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PageId alloc() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_allocated;
    ++stats_.pages_live;
    PageId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = next_page_++;
    }
    // A fresh page starts resident and dirty (all-zero frame); it only
    // touches the file if it survives long enough to be evicted.
    Frame& f = ensure_frame(id, /*load=*/false);
    std::memset(f.data.get(), 0, page_bytes());
    f.dirty = true;
    return id;
  }

  void free_page(PageId page) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_freed;
    --stats_.pages_live;
    const auto it = frames_.find(page);
    if (it != frames_.end() && it->second.pins > 0) {
      // Freed while an operation still pins it (e.g. sealing emptied
      // the page mid-walk).  Defer the drop — and the id's reuse —
      // until the last unpin so outstanding frame pointers stay valid.
      it->second.doomed = true;
      return;
    }
    if (it != frames_.end()) {
      lru_.erase(it->second.lru_pos);
      frames_.erase(it);
    }
    finish_free(page);
  }

  std::uint8_t* pin(PageId page) override {
    std::lock_guard<std::mutex> lock(mu_);
    Frame& f = ensure_frame(page, /*load=*/true);
    if (f.pins++ == 0) ++stats_.pinned_pages;
    // Most-recently-used position.
    lru_.splice(lru_.begin(), lru_, f.lru_pos);
    return f.data.get();
  }

  void unpin(PageId page, bool dirty) override {
    std::lock_guard<std::mutex> lock(mu_);
    Frame& f = frames_.at(page);
    if (dirty) f.dirty = true;
    if (--f.pins == 0) {
      --stats_.pinned_pages;
      if (f.doomed) {
        lru_.erase(f.lru_pos);
        frames_.erase(page);
        finish_free(page);
        return;
      }
    }
    evict_to_capacity();
  }

  PageStoreStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    PageStoreStats s = stats_;
    s.page_bytes = page_bytes();
    s.resident_pages = frames_.size();
    return s;
  }

 private:
  struct Frame {
    std::unique_ptr<std::uint8_t[]> data;
    std::list<PageId>::iterator lru_pos;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool doomed = false;  ///< freed while pinned; dropped on last unpin
  };

  /// Frame (if any) already dropped: reclaim the extent and make the
  /// id reusable.
  void finish_free(PageId page) {
    punch(page);
    if (written_.size() > page) written_[page] = false;
    free_.push_back(page);
  }

  [[nodiscard]] off_t offset_of(PageId page) const {
    return static_cast<off_t>(page) * static_cast<off_t>(page_bytes());
  }

  Frame& ensure_frame(PageId page, bool load) {
    const auto it = frames_.find(page);
    if (it != frames_.end()) return it->second;
    Frame f;
    f.data = std::make_unique<std::uint8_t[]>(page_bytes());
    if (load) {
      ++stats_.faults;
      if (written_.size() > page && written_[page]) {
        const ssize_t n = ::pread(fd_, f.data.get(), page_bytes(), offset_of(page));
        if (n != static_cast<ssize_t>(page_bytes()))
          throw std::runtime_error("FilePageStore: short read from spill file");
      } else {
        // Never evicted: the page was freshly allocated and dropped…
        // which cannot happen (fresh pages are dirty and flush on
        // eviction).  Zero-fill keeps the failure mode defined.
        std::memset(f.data.get(), 0, page_bytes());
      }
    }
    lru_.push_front(page);
    f.lru_pos = lru_.begin();
    Frame& placed = frames_.emplace(page, std::move(f)).first->second;
    evict_to_capacity(page);
    return placed;
  }

  /// Drops least-recently-used unpinned frames until within capacity.
  /// Pinned frames (and `protect`, a frame placed but not yet pinned)
  /// are skipped — a pin outranks the residency bound.
  void evict_to_capacity(PageId protect = kNoPage) {
    if (frames_.size() <= capacity_) return;
    for (auto it = lru_.end(); it != lru_.begin() && frames_.size() > capacity_;) {
      --it;
      const PageId victim = *it;
      if (victim == protect) continue;
      Frame& f = frames_.at(victim);
      if (f.pins > 0) continue;
      if (f.dirty) flush(victim, f);
      it = lru_.erase(it);
      frames_.erase(victim);
      ++stats_.evictions;
    }
  }

  void flush(PageId page, Frame& f) {
    const ssize_t n = ::pwrite(fd_, f.data.get(), page_bytes(), offset_of(page));
    if (n != static_cast<ssize_t>(page_bytes()))
      throw std::runtime_error("FilePageStore: short write to spill file");
    if (written_.size() <= page) written_.resize(page + 1, false);
    written_[page] = true;
    f.dirty = false;
    const std::size_t high = static_cast<std::size_t>(offset_of(page)) + page_bytes();
    if (high > stats_.spill_bytes) stats_.spill_bytes = high;
  }

  /// Returns a freed page's file extent to the filesystem where
  /// supported; counted either way so "pages freed" is observable.
  void punch(PageId page) {
#ifdef FALLOC_FL_PUNCH_HOLE
    if (written_.size() > page && written_[page]) {
      if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE, offset_of(page),
                      static_cast<off_t>(page_bytes())) == 0)
        ++stats_.holes_punched;
    }
#else
    (void)page;
#endif
  }

  mutable std::mutex mu_;
  int fd_ = -1;
  std::size_t capacity_;
  PageId next_page_ = 0;
  std::vector<PageId> free_;
  std::vector<bool> written_;  ///< pages with valid on-disk contents
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  ///< front = most recently pinned
  PageStoreStats stats_;
};

}  // namespace

std::unique_ptr<PageStore> PageStore::create(const PageStoreConfig& cfg) {
  if (cfg.page_bytes < 256)
    throw std::invalid_argument("PageStore: page_bytes must be >= 256");
  if (cfg.backend == PageStoreConfig::Backend::kFile)
    return std::make_unique<FilePageStore>(cfg);
  return std::make_unique<InMemoryPageStore>(cfg);
}

}  // namespace bmg::trie
