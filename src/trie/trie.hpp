// The sealable Merkle-Patricia trie — the paper's core data structure
// (§III-A).
//
// A normal Merkle trie only ever grows: the Guest Contract must
// remember every processed packet forever to prevent double delivery.
// The sealable trie lets the contract *seal* entries that will never
// be read again: the node's storage is reclaimed while its hash stays
// embedded in the parent, so the root commitment — and every proof
// against it — remains valid.  Sealed keys become permanently
// inaccessible: `get` reports kSealed, and inserting or proving
// through a sealed region fails.  That inaccessibility is exactly the
// double-delivery guard: `assert ph ∉ trie` fails for a sealed ph.
//
// Writes are committed lazily: `set()` and `seal()` only mark the
// modified spine dirty, and `commit()` recomputes the dirty hashes
// bottom-up, batching independent siblings through the multi-lane
// SHA-256 backend.  This mirrors the paper's Alg. 1, where the state
// root is committed once per guest block (GenerateBlock), not once
// per write.  `root_hash()` and `prove()` auto-commit, so callers can
// stay oblivious; batch writers get the speedup for free.
//
// Nodes live in paged arenas (paged.hpp) behind a PageStore
// (page_store.hpp): fixed-size pages of contiguous same-kind records,
// in RAM by default or spilled to disk through an LRU of frames for
// tries that outgrow memory.  Sealing is real reclamation — a fully
// sealed page is returned to the store (and hole-punched out of the
// spill file).  `snapshot()` publishes an immutable, cheaply copyable
// TrieSnapshot of the committed state via shadow paging; snapshot
// reads (get/prove) may run on other threads while this trie keeps
// mutating.
//
// Keys must be prefix-free (no key may be a prefix of another) and at
// most 32 bytes; the IBC layer guarantees both by hashing commitment
// paths.  Violations throw PrefixError / TrieError.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "trie/node.hpp"
#include "trie/paged.hpp"

namespace bmg::trie {

class TrieSnapshot;

class SealableTrie {
 public:
  using Lookup = trie::Lookup;

  /// In-RAM paged storage with default page size.
  SealableTrie() : SealableTrie(PageStoreConfig{}) {}
  /// Storage per `cfg` — file-backed with a bounded resident set for
  /// out-of-core tries, or tiny pages to stress boundaries in tests.
  explicit SealableTrie(const PageStoreConfig& cfg)
      : core_(std::make_shared<StoreCore>(cfg)) {}

  // Not copyable: per-block state capture is snapshot()'s job and is
  // O(pages/1024) instead of a deep copy.  Movable; a moved-from trie
  // may only be destroyed or assigned to.
  SealableTrie(const SealableTrie&) = delete;
  SealableTrie& operator=(const SealableTrie&) = delete;
  SealableTrie(SealableTrie&&) noexcept = default;
  SealableTrie& operator=(SealableTrie&&) noexcept = default;

  /// Inserts or updates `key`.  Throws SealedError if the path crosses
  /// a sealed region, PrefixError on prefix-freedom violations.  The
  /// modified spine is only marked dirty — no hashing happens until
  /// commit() (or an auto-committing read).
  void set(ByteView key, const Hash32& value);

  /// Looks up `key`; on kFound stores the value into `*value_out`
  /// (if non-null).  Never triggers a commit.
  [[nodiscard]] Lookup get(ByteView key, Hash32* value_out = nullptr) const;

  /// Seals the entry for `key`: reclaims its storage while keeping the
  /// root commitment unchanged.  Throws NotFoundError if absent,
  /// SealedError if already sealed.
  void seal(ByteView key);

  /// Recomputes every dirty node hash bottom-up, hashing independent
  /// siblings per level as one SHA-256 batch.  No-op when clean.  The
  /// guest contract calls this once per generated block (Alg. 1).
  void commit();

  /// True if there are writes whose hashes have not been committed.
  [[nodiscard]] bool has_uncommitted() const noexcept { return root_.dirty(); }

  /// Root commitment.  All-zero for the empty trie.  Auto-commits
  /// pending writes.
  [[nodiscard]] Hash32 root_hash() const;

  [[nodiscard]] bool empty() const noexcept { return root_.is_empty(); }

  /// Builds a membership or non-membership proof for `key`.
  /// Throws SealedError if the path enters a sealed region.
  /// Auto-commits pending writes.
  [[nodiscard]] Proof prove(ByteView key) const;

  /// Publishes an immutable snapshot of the committed state (commits
  /// first if needed).  The snapshot stays valid — and readable from
  /// any thread — for its whole lifetime, even across later mutations
  /// of this trie or its destruction.
  [[nodiscard]] TrieSnapshot snapshot();

  [[nodiscard]] TrieStats stats() const { return stats_; }

  /// Backing-store counters: pages allocated/freed/resident, spill
  /// traffic.  "pages freed vs seal rate" comes from here.
  [[nodiscard]] PageStoreStats page_stats() const { return core_->page_stats(); }
  /// Physical pages retired but parked until snapshots release them.
  [[nodiscard]] std::size_t pending_free_pages() const {
    return core_->pending_free_pages();
  }

  /// Recomputes TrieStats from the live nodes and throws
  /// std::logic_error if the incrementally maintained counters have
  /// drifted.  Also cross-checks page residency: per-page live-slot
  /// counts, mapped-vs-occupied agreement, and physical-page
  /// uniqueness.  Used by tests and sanitizer runs.
  void debug_check_stats() const;

 private:
  friend class TrieSnapshot;

  [[nodiscard]] std::uint32_t alloc_leaf(OpPins& pins, ByteView suffix,
                                         const Hash32& value);
  [[nodiscard]] std::uint32_t alloc_branch_pair(OpPins& pins, std::uint8_t nib_a,
                                                RefRec ref_a, std::uint8_t nib_b,
                                                RefRec ref_b);
  [[nodiscard]] std::uint32_t alloc_ext(OpPins& pins, ByteView path, RefRec child);
  void free_node(OpPins& pins, std::uint32_t node_id);
  void add_node_stats(OpPins& pins, std::uint32_t node_id);
  void sub_node_stats(OpPins& pins, std::uint32_t node_id);

  [[nodiscard]] Hash32 node_hash(OpPins& pins, std::uint32_t node_id) const;

  RefRec set_rec(OpPins& pins, RefRec ref, ByteView path, std::size_t pos,
                 const Hash32& value);
  void ensure_committed() const;
  [[nodiscard]] TrieStats recompute_stats(
      std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kNumKinds>*
          occupancy) const;

  std::shared_ptr<StoreCore> core_;
  RefRec root_;
  TrieStats stats_;
};

}  // namespace bmg::trie
