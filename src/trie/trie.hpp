// The sealable Merkle-Patricia trie — the paper's core data structure
// (§III-A).
//
// A normal Merkle trie only ever grows: the Guest Contract must
// remember every processed packet forever to prevent double delivery.
// The sealable trie lets the contract *seal* entries that will never
// be read again: the node's storage is reclaimed while its hash stays
// embedded in the parent, so the root commitment — and every proof
// against it — remains valid.  Sealed keys become permanently
// inaccessible: `get` reports kSealed, and inserting or proving
// through a sealed region fails.  That inaccessibility is exactly the
// double-delivery guard: `assert ph ∉ trie` fails for a sealed ph.
//
// Keys must be prefix-free (no key may be a prefix of another); the
// IBC layer guarantees this by hashing commitment paths.  Violations
// throw PrefixError.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "trie/node.hpp"

namespace bmg::trie {

class TrieError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
/// Operation would read or modify a sealed region.
class SealedError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// Key is a prefix of an existing key or vice versa.
class PrefixError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// seal() of a key that is not present.
class NotFoundError : public TrieError {
 public:
  using TrieError::TrieError;
};

/// Storage accounting (drives the §V-D storage-cost experiment).
struct TrieStats {
  std::size_t leaf_count = 0;
  std::size_t branch_count = 0;
  std::size_t extension_count = 0;
  /// Child references whose subtree has been sealed away.
  std::size_t sealed_refs = 0;
  /// Approximate serialized size of all live nodes, i.e. what the
  /// host-chain account actually has to store.
  std::size_t byte_size = 0;
  [[nodiscard]] std::size_t node_count() const {
    return leaf_count + branch_count + extension_count;
  }
};

class SealableTrie {
 public:
  enum class Lookup {
    kFound,   ///< key present, value returned
    kAbsent,  ///< key not in the trie
    kSealed,  ///< key's path enters a sealed region: inaccessible
  };

  SealableTrie() = default;

  /// Inserts or updates `key`.  Throws SealedError if the path crosses
  /// a sealed region, PrefixError on prefix-freedom violations.
  void set(ByteView key, const Hash32& value);

  /// Looks up `key`; on kFound stores the value into `*value_out`
  /// (if non-null).
  [[nodiscard]] Lookup get(ByteView key, Hash32* value_out = nullptr) const;

  /// Seals the entry for `key`: reclaims its storage while keeping the
  /// root commitment unchanged.  Throws NotFoundError if absent,
  /// SealedError if already sealed.
  void seal(ByteView key);

  /// Root commitment.  All-zero for the empty trie.
  [[nodiscard]] Hash32 root_hash() const noexcept;

  [[nodiscard]] bool empty() const noexcept;

  /// Builds a membership or non-membership proof for `key`.
  /// Throws SealedError if the path enters a sealed region.
  [[nodiscard]] Proof prove(ByteView key) const;

  [[nodiscard]] TrieStats stats() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;

  /// Child reference: empty, live (points at an arena node) or sealed
  /// (hash retained, node storage reclaimed).
  struct Ref {
    Hash32 hash{};
    std::uint32_t node = kNil;
    bool sealed = false;

    [[nodiscard]] bool is_empty() const noexcept { return node == kNil && !sealed; }
    [[nodiscard]] bool is_live() const noexcept { return node != kNil; }
  };

  struct LeafNode {
    Nibbles suffix;
    Hash32 value;
  };
  struct BranchNode {
    std::array<Ref, 16> children;
  };
  struct ExtensionNode {
    Nibbles path;
    Ref child;
  };
  using Node = std::variant<std::monostate, LeafNode, BranchNode, ExtensionNode>;

  [[nodiscard]] std::uint32_t alloc(Node node);
  void free_node(std::uint32_t idx);
  [[nodiscard]] Hash32 node_hash(std::uint32_t idx) const;
  [[nodiscard]] static std::optional<Hash32> ref_hash(const Ref& ref);

  Ref set_rec(Ref ref, const Nibbles& nibs, std::size_t pos, const Hash32& value);

  std::vector<Node> arena_;
  std::vector<std::uint32_t> free_list_;
  Ref root_;
};

}  // namespace bmg::trie
