// The sealable Merkle-Patricia trie — the paper's core data structure
// (§III-A).
//
// A normal Merkle trie only ever grows: the Guest Contract must
// remember every processed packet forever to prevent double delivery.
// The sealable trie lets the contract *seal* entries that will never
// be read again: the node's storage is reclaimed while its hash stays
// embedded in the parent, so the root commitment — and every proof
// against it — remains valid.  Sealed keys become permanently
// inaccessible: `get` reports kSealed, and inserting or proving
// through a sealed region fails.  That inaccessibility is exactly the
// double-delivery guard: `assert ph ∉ trie` fails for a sealed ph.
//
// Writes are committed lazily: `set()` and `seal()` only mark the
// modified spine dirty, and `commit()` recomputes the dirty hashes
// bottom-up, batching independent siblings through the multi-lane
// SHA-256 backend.  This mirrors the paper's Alg. 1, where the state
// root is committed once per guest block (GenerateBlock), not once
// per write.  `root_hash()` and `prove()` auto-commit, so callers can
// stay oblivious; batch writers get the speedup for free.
//
// Nodes live in typed slab arenas (one per node kind) with free
// lists; sealing returns slots.  This keeps batch commits
// cache-friendly and avoids per-node heap allocation.
//
// Keys must be prefix-free (no key may be a prefix of another); the
// IBC layer guarantees this by hashing commitment paths.  Violations
// throw PrefixError.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "trie/node.hpp"

namespace bmg::trie {

class TrieError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
/// Operation would read or modify a sealed region.
class SealedError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// Key is a prefix of an existing key or vice versa.
class PrefixError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// seal() of a key that is not present.
class NotFoundError : public TrieError {
 public:
  using TrieError::TrieError;
};

/// Storage accounting (drives the §V-D storage-cost experiment).
/// Maintained incrementally by the trie; `debug_check_stats()`
/// recomputes it from the live nodes and verifies the two agree.
struct TrieStats {
  std::size_t leaf_count = 0;
  std::size_t branch_count = 0;
  std::size_t extension_count = 0;
  /// Child references whose subtree has been sealed away.
  std::size_t sealed_refs = 0;
  /// Approximate serialized size of all live nodes, i.e. what the
  /// host-chain account actually has to store.
  std::size_t byte_size = 0;
  [[nodiscard]] std::size_t node_count() const {
    return leaf_count + branch_count + extension_count;
  }

  friend bool operator==(const TrieStats&, const TrieStats&) = default;
};

class SealableTrie {
 public:
  enum class Lookup {
    kFound,   ///< key present, value returned
    kAbsent,  ///< key not in the trie
    kSealed,  ///< key's path enters a sealed region: inaccessible
  };

  SealableTrie() = default;

  /// Inserts or updates `key`.  Throws SealedError if the path crosses
  /// a sealed region, PrefixError on prefix-freedom violations.  The
  /// modified spine is only marked dirty — no hashing happens until
  /// commit() (or an auto-committing read).
  void set(ByteView key, const Hash32& value);

  /// Looks up `key`; on kFound stores the value into `*value_out`
  /// (if non-null).  Never triggers a commit.
  [[nodiscard]] Lookup get(ByteView key, Hash32* value_out = nullptr) const;

  /// Seals the entry for `key`: reclaims its storage while keeping the
  /// root commitment unchanged.  Throws NotFoundError if absent,
  /// SealedError if already sealed.
  void seal(ByteView key);

  /// Recomputes every dirty node hash bottom-up, hashing independent
  /// siblings per level as one SHA-256 batch.  No-op when clean.  The
  /// guest contract calls this once per generated block (Alg. 1).
  void commit();

  /// True if there are writes whose hashes have not been committed.
  [[nodiscard]] bool has_uncommitted() const noexcept { return root_.dirty; }

  /// Root commitment.  All-zero for the empty trie.  Auto-commits
  /// pending writes.
  [[nodiscard]] Hash32 root_hash() const;

  [[nodiscard]] bool empty() const noexcept;

  /// Builds a membership or non-membership proof for `key`.
  /// Throws SealedError if the path enters a sealed region.
  /// Auto-commits pending writes.
  [[nodiscard]] Proof prove(ByteView key) const;

  [[nodiscard]] TrieStats stats() const { return stats_; }

  /// Recomputes TrieStats from the live nodes and throws
  /// std::logic_error if the incrementally maintained counters have
  /// drifted.  Used by tests and sanitizer runs.
  void debug_check_stats() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;
  /// Node ids pack the arena kind into the top bits of the index.
  static constexpr std::uint32_t kKindShift = 30;
  static constexpr std::uint32_t kIndexMask = (1u << kKindShift) - 1;
  enum Kind : std::uint32_t { kLeaf = 0, kBranch = 1, kExt = 2 };

  /// Child reference: empty, live (points at an arena node) or sealed
  /// (hash retained, node storage reclaimed).  `dirty` marks a live
  /// ref whose recorded hash is stale pending commit(); a dirty ref's
  /// ancestors are always dirty too.
  struct Ref {
    Hash32 hash{};
    std::uint32_t node = kNil;
    bool sealed = false;
    bool dirty = false;

    [[nodiscard]] bool is_empty() const noexcept { return node == kNil && !sealed; }
    [[nodiscard]] bool is_live() const noexcept { return node != kNil; }
  };

  struct LeafNode {
    Nibbles suffix;
    Hash32 value;
  };
  struct BranchNode {
    std::array<Ref, 16> children;
  };
  struct ExtensionNode {
    Nibbles path;
    Ref child;
  };

  [[nodiscard]] static Kind kind_of(std::uint32_t node) noexcept {
    return static_cast<Kind>(node >> kKindShift);
  }
  [[nodiscard]] static std::uint32_t index_of(std::uint32_t node) noexcept {
    return node & kIndexMask;
  }

  [[nodiscard]] LeafNode& leaf_at(std::uint32_t node) { return leaves_[index_of(node)]; }
  [[nodiscard]] const LeafNode& leaf_at(std::uint32_t node) const {
    return leaves_[index_of(node)];
  }
  [[nodiscard]] BranchNode& branch_at(std::uint32_t node) {
    return branches_[index_of(node)];
  }
  [[nodiscard]] const BranchNode& branch_at(std::uint32_t node) const {
    return branches_[index_of(node)];
  }
  [[nodiscard]] ExtensionNode& ext_at(std::uint32_t node) { return exts_[index_of(node)]; }
  [[nodiscard]] const ExtensionNode& ext_at(std::uint32_t node) const {
    return exts_[index_of(node)];
  }

  [[nodiscard]] std::uint32_t alloc_leaf(LeafNode node);
  [[nodiscard]] std::uint32_t alloc_branch(BranchNode node);
  [[nodiscard]] std::uint32_t alloc_ext(ExtensionNode node);
  void free_node(std::uint32_t node);

  void add_node_stats(std::uint32_t node);
  void sub_node_stats(std::uint32_t node);

  [[nodiscard]] Hash32 node_hash(std::uint32_t node) const;
  void append_node_preimage(Bytes& out, std::uint32_t node) const;
  [[nodiscard]] static std::optional<Hash32> ref_hash(const Ref& ref);

  Ref set_rec(Ref ref, const Nibbles& nibs, std::size_t pos, const Hash32& value);
  void ensure_committed() const;
  [[nodiscard]] TrieStats recompute_stats() const;

  // Typed slab arenas with free lists; sealing returns slots.
  std::vector<LeafNode> leaves_;
  std::vector<std::uint32_t> free_leaves_;
  std::vector<BranchNode> branches_;
  std::vector<std::uint32_t> free_branches_;
  std::vector<ExtensionNode> exts_;
  std::vector<std::uint32_t> free_exts_;

  Ref root_;
  TrieStats stats_;
};

}  // namespace bmg::trie
