// Paged node storage core for the sealable trie.
//
// This header is the storage layer under SealableTrie (trie.hpp) and
// TrieSnapshot (snapshot.hpp):
//
//   * POD node records (LeafRec/BranchRec/ExtRec) that live inside
//     fixed-size pages owned by a PageStore (page_store.hpp).  Records
//     are trivially copyable so a page can be spilled to disk and read
//     back byte-for-byte.  Node ids keep the historical packing — kind
//     in the top 2 bits, a 30-bit slot index below — where the slot
//     index is `logical_page * slots_per_page + slot`.
//   * StoreCore: per-kind paged arenas with a chunked copy-on-write
//     logical→physical page table, epoch-based snapshot visibility,
//     and deferred physical-page reclamation.  Fully emptied pages
//     (everything on them sealed) are returned to the PageStore — and
//     hole-punched out of the spill file by the file backend — which
//     is what turns the paper's sealing claim (§III-A) into measured
//     space reclamation.
//   * Shared read walkers (walk_get / walk_prove) used by both the
//     live trie and immutable snapshots, so proofs are byte-identical
//     no matter which side generates them.
//
// Snapshot model (shadow paging): the live trie mutates records in
// place while a logical page is *private* (born in the current epoch
// window, or invisible to every live snapshot).  `publish()` registers
// the current epoch and hands out a cheap copy of the chunked page
// tables; the first write to a page a snapshot can see copies the page
// and repoints the (privately cloned) table chunk.  Retired physical
// pages are freed immediately when no live snapshot can reference
// them, otherwise they sit on a pending list swept as snapshot epochs
// are released.
//
// Thread model: all *mutations* (set/seal/commit/publish/alloc/free)
// happen on one thread — the trie owner's.  Snapshot *reads* may run
// concurrently on any thread: they resolve pages through their own
// table copy, touch only pages the copy references (which the live
// side never writes again, by COW), and pin frames through the
// mutex-protected PageStore.  The epoch registry and pending-free list
// are mutex-protected because snapshot destructors run on reader
// threads.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "trie/node.hpp"
#include "trie/page_store.hpp"

namespace bmg::trie {

class TrieError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
/// Operation would read or modify a sealed region.
class SealedError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// Key is a prefix of an existing key or vice versa.
class PrefixError : public TrieError {
 public:
  using TrieError::TrieError;
};
/// seal() of a key that is not present.
class NotFoundError : public TrieError {
 public:
  using TrieError::TrieError;
};

/// Result of a point lookup (shared by the live trie and snapshots).
enum class Lookup {
  kFound,   ///< key present, value returned
  kAbsent,  ///< key not in the trie
  kSealed,  ///< key's path enters a sealed region: inaccessible
};

/// Storage accounting (drives the §V-D storage-cost experiment).
/// Maintained incrementally by the trie; `debug_check_stats()`
/// recomputes it from the live nodes and verifies the two agree.
struct TrieStats {
  std::size_t leaf_count = 0;
  std::size_t branch_count = 0;
  std::size_t extension_count = 0;
  /// Child references whose subtree has been sealed away.
  std::size_t sealed_refs = 0;
  /// Approximate serialized size of all live nodes, i.e. what the
  /// host-chain account actually has to store.
  std::size_t byte_size = 0;
  [[nodiscard]] std::size_t node_count() const {
    return leaf_count + branch_count + extension_count;
  }

  friend bool operator==(const TrieStats&, const TrieStats&) = default;
};

// ---------------------------------------------------------------------------
// Node ids and on-page records

inline constexpr std::uint32_t kNilNode = 0xFFFFFFFFu;
inline constexpr std::uint32_t kKindShift = 30;
inline constexpr std::uint32_t kIndexMask = (1u << kKindShift) - 1;

enum NodeKind : std::uint32_t { kLeaf = 0, kBranch = 1, kExt = 2 };
inline constexpr std::size_t kNumKinds = 3;

[[nodiscard]] inline NodeKind kind_of(std::uint32_t node) noexcept {
  return static_cast<NodeKind>(node >> kKindShift);
}
[[nodiscard]] inline std::uint32_t index_of(std::uint32_t node) noexcept {
  return node & kIndexMask;
}
[[nodiscard]] inline std::uint32_t make_node_id(NodeKind k, std::uint32_t index) noexcept {
  return (static_cast<std::uint32_t>(k) << kKindShift) | index;
}

/// Child reference: empty, live (points at a paged node) or sealed
/// (hash retained, node storage reclaimed).  kDirty marks a live ref
/// whose recorded hash is stale pending commit(); a dirty ref's
/// ancestors are always dirty too.
struct RefRec {
  static constexpr std::uint8_t kSealedFlag = 1;
  static constexpr std::uint8_t kDirtyFlag = 2;

  Hash32 hash{};
  std::uint32_t node = kNilNode;
  std::uint8_t flags = 0;
  std::uint8_t pad[3] = {0, 0, 0};

  [[nodiscard]] bool is_empty() const noexcept {
    return node == kNilNode && (flags & kSealedFlag) == 0;
  }
  [[nodiscard]] bool is_live() const noexcept { return node != kNilNode; }
  [[nodiscard]] bool sealed() const noexcept { return (flags & kSealedFlag) != 0; }
  [[nodiscard]] bool dirty() const noexcept { return (flags & kDirtyFlag) != 0; }
  void set_sealed(bool v) noexcept {
    flags = static_cast<std::uint8_t>(v ? (flags | kSealedFlag) : (flags & ~kSealedFlag));
  }
  void set_dirty(bool v) noexcept {
    flags = static_cast<std::uint8_t>(v ? (flags | kDirtyFlag) : (flags & ~kDirtyFlag));
  }

  [[nodiscard]] static RefRec live_dirty(std::uint32_t node_id) noexcept {
    RefRec r;
    r.node = node_id;
    r.flags = kDirtyFlag;
    return r;
  }
};

/// Fixed-capacity nibble path.  64 nibbles covers a 32-byte (hashed)
/// key, the longest path the IBC layer ever stores; set()/seal()
/// reject longer keys so a record never needs out-of-line storage and
/// stays spillable as raw bytes.
struct PathRec {
  static constexpr std::size_t kMaxNibbles = 64;
  std::uint32_t len = 0;
  std::uint8_t nibs[kMaxNibbles] = {};

  [[nodiscard]] ByteView view() const noexcept { return ByteView{nibs, len}; }
  [[nodiscard]] std::size_t size() const noexcept { return len; }

  void assign(const std::uint8_t* data, std::size_t n) {
    if (n > kMaxNibbles) throw TrieError("trie: key path exceeds 64 nibbles");
    len = static_cast<std::uint32_t>(n);
    if (n != 0) std::memcpy(nibs, data, n);
  }
};

struct LeafRec {
  PathRec suffix;
  Hash32 value;
};
struct BranchRec {
  std::array<RefRec, 16> children;
};
struct ExtRec {
  PathRec path;
  RefRec child;
};

static_assert(std::is_trivially_copyable_v<RefRec> && sizeof(RefRec) == 40);
static_assert(std::is_trivially_copyable_v<LeafRec> && sizeof(LeafRec) == 100);
static_assert(std::is_trivially_copyable_v<BranchRec> && sizeof(BranchRec) == 640);
static_assert(std::is_trivially_copyable_v<ExtRec> && sizeof(ExtRec) == 108);

[[nodiscard]] inline std::size_t common_prefix_span(ByteView a, ByteView b) noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// ---------------------------------------------------------------------------
// Page tables

/// One chunk of the logical→physical page table.  Chunks are shared
/// between the live trie and snapshots via shared_ptr; the live side
/// clones a chunk before writing to it while it is shared, so a
/// snapshot's table copy is frozen at publish time for the cost of
/// copying ~(pages/1024) shared_ptrs.
struct TableChunk {
  static constexpr std::size_t kEntries = 1024;
  struct Entry {
    PageId phys = kNoPage;
    std::uint32_t birth = 0;  ///< epoch window the mapping was (re)created in
  };
  std::array<Entry, kEntries> e{};
};

/// Per-kind chunked page tables.  A snapshot captures one of these by
/// value; the live trie owns the mutable current one.
using TableSet = std::array<std::vector<std::shared_ptr<TableChunk>>, kNumKinds>;

// ---------------------------------------------------------------------------
// Operation-scoped pin cache

/// Pins physical pages for the duration of one trie operation so
/// record pointers stay stable across the whole call (the file-backed
/// store never evicts or moves a pinned frame).  Each distinct page is
/// pinned once; everything is released when the OpPins goes out of
/// scope.
class OpPins {
 public:
  explicit OpPins(PageStore& store) : store_(&store) {}
  OpPins(const OpPins&) = delete;
  OpPins& operator=(const OpPins&) = delete;
  ~OpPins() = default;

  [[nodiscard]] std::uint8_t* acquire(PageId phys, bool write) {
    auto [it, fresh] = pins_.try_emplace(phys);
    if (fresh) it->second = PagePin(*store_, phys);
    if (write) it->second.mark_dirty();
    return it->second.data();
  }

 private:
  PageStore* store_;
  std::unordered_map<PageId, PagePin> pins_;
};

// ---------------------------------------------------------------------------
// StoreCore

/// The paged arena allocator + snapshot machinery shared (via
/// shared_ptr) by one SealableTrie and every TrieSnapshot published
/// from it.  See the file comment for the model.
class StoreCore {
 public:
  explicit StoreCore(const PageStoreConfig& cfg);

  StoreCore(const StoreCore&) = delete;
  StoreCore& operator=(const StoreCore&) = delete;

  [[nodiscard]] PageStore& store() noexcept { return *store_; }
  [[nodiscard]] const TableSet& live_tables() const noexcept { return tables_; }
  [[nodiscard]] PageStoreStats page_stats() const { return store_->stats(); }

  /// Allocates a slot for a `kind` record and returns the packed node
  /// id.  The record bytes are whatever the page holds — the caller
  /// must immediately initialise them through write_rec().
  [[nodiscard]] std::uint32_t alloc_slot(NodeKind kind);

  /// Releases a node's slot.  When this empties the slot's page the
  /// physical page is retired (freed now, or parked until the last
  /// snapshot that can see it is released).
  void free_slot(std::uint32_t node_id);

  /// Read access to a record through an arbitrary table set (the live
  /// one or a snapshot's copy).  The pointer stays valid while `pins`
  /// is alive.
  [[nodiscard]] const std::uint8_t* read_rec(const TableSet& tables, std::uint32_t node_id,
                                             OpPins& pins) const;

  /// Write access through the live tables.  Copies the page first if
  /// any live snapshot can see it (shadow paging), so snapshot readers
  /// never observe the mutation.
  [[nodiscard]] std::uint8_t* write_rec(std::uint32_t node_id, OpPins& pins);

  /// Registers the current epoch as a published snapshot and returns
  /// (epoch, frozen table copy).  The caller pairs it with the root
  /// ref + stats to form a TrieSnapshot.  Mutator thread only.
  struct Published {
    std::uint32_t epoch = 0;
    TableSet tables;
  };
  [[nodiscard]] Published publish();

  /// Releases a published epoch (snapshot destructor; any thread) and
  /// frees pending pages no remaining snapshot can reference.
  void release_epoch(std::uint32_t epoch);

  /// commit() guard: while set, a write_rec that would need to copy a
  /// page throws std::logic_error.  Dirty refs are only ever created
  /// on already-private pages, so commit's raw record pointers cannot
  /// be invalidated by a COW — this enforces that invariant.
  void set_expect_no_cow(bool v) noexcept { expect_no_cow_ = v; }

  [[nodiscard]] std::size_t slots_per_page(NodeKind k) const noexcept {
    return arenas_[k].slots_per_page;
  }
  /// Physical pages currently parked until a snapshot release.
  [[nodiscard]] std::size_t pending_free_pages() const;

  /// Cross-checks arena metadata against `occupancy`: per-kind counts
  /// of live node slots per logical page, as recomputed by a full trie
  /// walk.  Verifies live-slot counts, that mapped pages are exactly
  /// the occupied ones (modulo retained bump pages), and that every
  /// mapped logical page has a distinct physical page.  Throws
  /// std::logic_error on any mismatch.
  void debug_check_pages(
      const std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kNumKinds>&
          occupancy) const;

 private:
  struct Arena {
    std::uint32_t rec_size = 0;
    std::uint32_t slots_per_page = 0;
    /// Live-slot count per logical page (live trie only).
    std::vector<std::uint32_t> live;
    /// Bumped when a logical page is retired; stale free-list entries
    /// from before the retire are skipped by generation mismatch.
    std::vector<std::uint32_t> gen;
    /// Free slots: (gen << 32) | slot_index, LIFO for locality.
    std::vector<std::uint64_t> free_slots;
    /// Retired logical page ids available for reuse.
    std::vector<std::uint32_t> free_logical;
    /// Current bump page (kNilNode when none); never retired while
    /// current so in-flight bump slots stay valid.
    std::uint32_t bump_page = kNilNode;
    std::uint32_t bump_slot = 0;
  };

  [[nodiscard]] TableChunk::Entry table_entry(const TableSet& tables, NodeKind k,
                                              std::uint32_t logical) const;
  void set_table_entry(NodeKind k, std::uint32_t logical, TableChunk::Entry entry);
  [[nodiscard]] std::uint32_t new_logical_page(NodeKind k);
  void retire_logical_page(NodeKind k, std::uint32_t logical);
  void retire_phys(PageId phys, std::uint32_t birth);
  /// True if some live snapshot's tables may reference a physical page
  /// whose mapping was created in `birth`.
  [[nodiscard]] bool shared_with_snapshot(std::uint32_t birth) const;

  std::shared_ptr<PageStore> store_;
  std::array<Arena, kNumKinds> arenas_;
  TableSet tables_;
  std::uint32_t epoch_ = 1;  ///< current mutation window
  bool expect_no_cow_ = false;

  mutable std::mutex mu_;  ///< guards live_epochs_ + pending_
  std::multiset<std::uint32_t> live_epochs_;
  struct PendingFree {
    PageId phys;
    std::uint32_t birth;
    std::uint32_t retire;
  };
  std::vector<PendingFree> pending_;
};

// ---------------------------------------------------------------------------
// Shared read walkers

/// Point lookup against `root` through `tables`.  Used by both
/// SealableTrie::get (live tables) and TrieSnapshot::get (frozen
/// copy), so live and snapshot reads cannot diverge.
[[nodiscard]] Lookup walk_get(const StoreCore& core, const TableSet& tables,
                              const RefRec& root, ByteView key, Hash32* value_out);

/// (Non-)membership proof for `key` against `root` through `tables`.
/// Throws SealedError if the path enters a sealed region.  The caller
/// must have committed `root` (snapshots are committed by
/// construction).
[[nodiscard]] Proof walk_prove(const StoreCore& core, const TableSet& tables,
                               const RefRec& root, ByteView key);

}  // namespace bmg::trie
