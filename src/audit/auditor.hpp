// Chaos-time invariant auditor.
//
// An independent observer subscribed to both chains that re-checks the
// bridge's global safety invariants after every block, under fault
// injection and crash-restart chaos alike:
//
//  1. conservation — for each transfer lane, native tokens locked in
//     the source escrow equal the voucher supply minted on the other
//     side plus the value still in flight (unreceived or error-acked
//     pending packets in either direction);
//  2. sequence monotonicity — per-channel send/recv counters and
//     seq-tracker watermarks never decrease, and the resolved
//     watermark never overtakes the send counter;
//  3. commitment-root consistency — every finalised guest block's
//     header commits exactly the state root of the contract's retained
//     snapshot for that height (what packet proofs verify against);
//  4. client-height no-regression — light client heights on both
//     sides only move forward.
//
// Every check is a pure read executed inline inside existing event
// handlers; the auditor schedules no simulation events and draws no
// randomness, so wiring it in changes neither the event count nor any
// transcript byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "counterparty/chain.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "sim/scheduler.hpp"

namespace bmg::audit {

/// One audited ICS-20 channel pair.  `guest_native_denom` is escrowed
/// on the guest when flowing out (vouchered on the counterparty);
/// `cp_native_denom` the reverse.
struct TransferLane {
  ibc::ChannelId guest_channel;
  ibc::ChannelId cp_channel;
  std::string guest_native_denom;
  std::string cp_native_denom;
  ibc::PortId port = "transfer";
};

struct Violation {
  std::string invariant;  ///< "conservation", "sequence", "commit-root", "client-height"
  std::string detail;
  double time = 0;
  std::string trigger;  ///< which block event tripped the check
};

/// A value-type summary of one auditor's run — what a shard cell hands
/// back across the pool boundary (the auditor itself holds references
/// into the cell's simulation and must die with it).  `label` names
/// the cell ("seed 42 delta 600"); `report` is empty when clean.
struct Verdict {
  std::string label;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::string report;

  [[nodiscard]] bool clean() const noexcept { return violations == 0; }
};

/// Deterministic grid-order aggregation of per-cell verdicts: counters
/// sum, dirty cells' reports concatenate (prefixed with their labels)
/// in the order given — which the shard runners keep in grid order, so
/// the merged verdict is byte-identical at every worker count.
[[nodiscard]] Verdict merge_verdicts(const std::vector<Verdict>& cells);

/// Canonical textual digest of a bank ledger (every balance and every
/// denom supply, in map order).  Fork-convergence tests compare the
/// digests of a reorg-storm run against a reorg-free run of the same
/// workload: with full survival they must match exactly.
[[nodiscard]] std::string token_state_digest(const ibc::Bank& bank);

class InvariantAuditor {
 public:
  InvariantAuditor(sim::Simulation& sim, host::Chain& host, guest::GuestContract& guest,
                   counterparty::CounterpartyChain& cp)
      : sim_(sim), host_(host), guest_(guest), cp_(cp) {}

  void watch_transfer_lane(TransferLane lane) { lanes_.push_back(std::move(lane)); }
  /// Enables client-height regression checks (the guest's counterparty
  /// client is always watched; this names its mirror on the cp side).
  void watch_client(ibc::ClientId guest_client_on_cp) {
    guest_client_on_cp_ = std::move(guest_client_on_cp);
  }

  /// Subscribes to both chains and audits after every block from then
  /// on.  Safe to call before or after the IBC handshake.
  void start();

  /// Runs the whole suite once, immediately (tests call this for a
  /// final sweep after the sim drains).
  void check_now(const std::string& trigger);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t violations_total() const noexcept {
    return violations_total_;
  }
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_run_; }
  [[nodiscard]] bool clean() const noexcept { return violations_total_ == 0; }
  /// Human-readable multi-line summary of recorded violations.
  [[nodiscard]] std::string report() const;
  /// Detachable summary for cross-shard aggregation; `label` names the
  /// grid cell this auditor watched.
  [[nodiscard]] Verdict verdict(std::string label = {}) const;

 private:
  void check_conservation(const std::string& trigger);
  void check_sequences(const std::string& trigger);
  void check_commit_roots(const std::string& trigger);
  void check_client_heights(const std::string& trigger);

  /// Value of `denom` still travelling src→dst (or error-acked and
  /// awaiting refund) over pending packets on `src`'s channel end.
  [[nodiscard]] std::uint64_t in_flight_value(const ibc::IbcModule& src,
                                              const ibc::IbcModule& dst,
                                              const ibc::PortId& port,
                                              const ibc::ChannelId& src_channel,
                                              const ibc::ChannelId& dst_channel,
                                              const std::string& denom) const;

  void record(std::string invariant, std::string detail, const std::string& trigger);

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& guest_;
  counterparty::CounterpartyChain& cp_;

  std::vector<TransferLane> lanes_;
  ibc::ClientId guest_client_on_cp_;

  /// chain tag ('g'/'c') + port + channel -> last observed counters.
  std::map<std::string, ibc::IbcModule::ChannelSequences> prev_seqs_;
  ibc::Height next_root_check_ = 1;  ///< finalised-prefix cursor
  ibc::Height prev_guest_client_height_ = 0;
  ibc::Height prev_cp_client_height_ = 0;
  /// Host fork epoch the stateful cursors above were recorded in.  A
  /// reorg legitimately rewinds sequences, client heights and the
  /// finalised prefix; on an epoch change the cursors reset instead of
  /// reporting phantom regressions, and the rebuilt prefix is
  /// re-audited from scratch.
  std::uint64_t last_fork_epoch_ = 0;

  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  std::uint64_t checks_run_ = 0;
  bool started_ = false;

  static constexpr std::size_t kMaxRecorded = 256;
};

}  // namespace bmg::audit
