#include "audit/auditor.hpp"

#include <sstream>

#include "ibc/transfer.hpp"

namespace bmg::audit {

void InvariantAuditor::start() {
  if (started_) return;
  started_ = true;
  // Both subscriptions run the checks inline inside the chains' own
  // event dispatch — no new simulation events, no RNG draws.
  host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (ev.name == guest::GuestContract::kEvNewBlock ||
        ev.name == guest::GuestContract::kEvFinalisedBlock)
      check_now(std::string("guest:") + ev.name);
  });
  cp_.on_new_block([this](ibc::Height) { check_now("cp:block"); });
}

void InvariantAuditor::check_now(const std::string& trigger) {
  if (host_.fork_mode() && host_.fork_epoch() != last_fork_epoch_) {
    // A reorg rewound guest state: monotonicity baselines recorded on
    // the losing fork are void, and the rebuilt rooted-and-finalised
    // prefix is re-audited from the start.
    last_fork_epoch_ = host_.fork_epoch();
    prev_seqs_.clear();
    prev_guest_client_height_ = 0;
    prev_cp_client_height_ = 0;
    next_root_check_ = 1;
  }
  ++checks_run_;
  check_conservation(trigger);
  check_sequences(trigger);
  check_commit_roots(trigger);
  check_client_heights(trigger);
}

// --- invariant 1: conservation ----------------------------------------------

std::uint64_t InvariantAuditor::in_flight_value(const ibc::IbcModule& src,
                                                const ibc::IbcModule& dst,
                                                const ibc::PortId& port,
                                                const ibc::ChannelId& src_channel,
                                                const ibc::ChannelId& dst_channel,
                                                const std::string& denom) const {
  std::uint64_t sum = 0;
  for (const std::uint64_t seq : src.pending_send_sequences(port, src_channel)) {
    const ibc::Packet* p = src.sent_packet(port, src_channel, seq);
    if (p == nullptr) continue;
    ibc::TokenPacketData data;
    try {
      data = ibc::TokenPacketData::decode(p->data);
    } catch (...) {
      continue;  // not an ICS-20 packet
    }
    if (data.denom != denom) continue;
    // Value is settled on the destination only once the packet is both
    // received *and* acked successfully; an error ack means the funds
    // travel back (refund on ack delivery), so they still count.
    if (!dst.packet_received(port, dst_channel, seq)) {
      sum += data.amount;
      continue;
    }
    const auto ack = dst.ack_for(port, dst_channel, seq);
    if (!ack || !ack->success) sum += data.amount;
  }
  return sum;
}

void InvariantAuditor::check_conservation(const std::string& trigger) {
  for (const TransferLane& lane : lanes_) {
    const ibc::IbcModule& gm = guest_.ibc();
    const ibc::IbcModule& cm = cp_.ibc();
    struct Direction {
      const ibc::IbcModule& src;
      const ibc::IbcModule& dst;
      ibc::Bank& src_bank;
      ibc::Bank& dst_bank;
      const ibc::ChannelId& src_channel;
      const ibc::ChannelId& dst_channel;
      const std::string& native;
      const char* tag;
    };
    const Direction dirs[2] = {
        {gm, cm, guest_.bank(), cp_.bank(), lane.guest_channel, lane.cp_channel,
         lane.guest_native_denom, "guest->cp"},
        {cm, gm, cp_.bank(), guest_.bank(), lane.cp_channel, lane.guest_channel,
         lane.cp_native_denom, "cp->guest"},
    };
    for (const Direction& d : dirs) {
      if (d.native.empty()) continue;
      const std::string voucher =
          lane.port + "/" + d.dst_channel + "/" + d.native;
      const std::uint64_t escrowed = d.src_bank.balance(
          ibc::TokenTransferApp::escrow_account(d.src_channel), d.native);
      const std::uint64_t minted = d.dst_bank.total_supply(voucher);
      // Native tokens travelling outward...
      const std::uint64_t outbound = in_flight_value(
          d.src, d.dst, lane.port, d.src_channel, d.dst_channel, d.native);
      // ...and vouchers travelling home (burned at send, escrow not
      // yet released).
      const std::uint64_t returning = in_flight_value(
          d.dst, d.src, lane.port, d.dst_channel, d.src_channel, voucher);
      if (escrowed != minted + outbound + returning) {
        std::ostringstream os;
        os << d.tag << " " << d.native << ": escrowed " << escrowed
           << " != minted " << minted << " + outbound " << outbound
           << " + returning " << returning;
        record("conservation", os.str(), trigger);
      }
    }
  }
}

// --- invariant 2: sequence monotonicity -------------------------------------

void InvariantAuditor::check_sequences(const std::string& trigger) {
  const auto audit_module = [&](const ibc::IbcModule& m, const char* tag) {
    for (const auto& [port, channel] : m.channels()) {
      const auto s = m.sequences(port, channel);
      if (s.resolved_watermark >= s.next_send) {
        std::ostringstream os;
        os << tag << " " << port << "/" << channel << ": resolved watermark "
           << s.resolved_watermark << " overtook next_send " << s.next_send;
        record("sequence", os.str(), trigger);
      }
      const std::string key = std::string(tag) + "|" + port + "|" + channel;
      const auto it = prev_seqs_.find(key);
      if (it != prev_seqs_.end()) {
        const auto& p = it->second;
        const auto regressed = [&](const char* what, std::uint64_t prev,
                                   std::uint64_t cur) {
          if (cur >= prev) return;
          std::ostringstream os;
          os << tag << " " << port << "/" << channel << ": " << what
             << " regressed " << prev << " -> " << cur;
          record("sequence", os.str(), trigger);
        };
        regressed("next_send", p.next_send, s.next_send);
        regressed("next_recv", p.next_recv, s.next_recv);
        regressed("resolved_watermark", p.resolved_watermark, s.resolved_watermark);
        regressed("receipts_watermark", p.receipts_watermark, s.receipts_watermark);
        regressed("acks_watermark", p.acks_watermark, s.acks_watermark);
      }
      prev_seqs_[key] = s;
    }
  };
  audit_module(guest_.ibc(), "guest");
  audit_module(cp_.ibc(), "cp");
}

// --- invariant 3: commitment-root consistency -------------------------------

void InvariantAuditor::check_commit_roots(const std::string& trigger) {
  // Guest blocks finalise strictly in height order, so a cursor over
  // the finalised prefix audits each block exactly once.
  while (next_root_check_ < guest_.block_count()) {
    const guest::GuestBlock& b = guest_.block_at(next_root_check_);
    if (!b.finalised) break;
    const auto snapshot = guest_.snapshot_root_at(next_root_check_);
    if (snapshot && *snapshot != b.header.state_root) {
      std::ostringstream os;
      os << "guest block " << next_root_check_
         << ": header state_root != retained trie snapshot root";
      record("commit-root", os.str(), trigger);
    }
    ++next_root_check_;
  }
}

// --- invariant 4: client-height no-regression -------------------------------

void InvariantAuditor::check_client_heights(const std::string& trigger) {
  const ibc::Height gh = guest_.counterparty_client().latest_height();
  if (gh < prev_guest_client_height_) {
    std::ostringstream os;
    os << "guest's counterparty client regressed " << prev_guest_client_height_
       << " -> " << gh;
    record("client-height", os.str(), trigger);
  }
  prev_guest_client_height_ = gh;

  if (!guest_client_on_cp_.empty()) {
    const ibc::Height ch = cp_.ibc().client(guest_client_on_cp_).latest_height();
    if (ch < prev_cp_client_height_) {
      std::ostringstream os;
      os << "cp's guest client regressed " << prev_cp_client_height_ << " -> " << ch;
      record("client-height", os.str(), trigger);
    }
    prev_cp_client_height_ = ch;
  }
}

// --- bookkeeping ------------------------------------------------------------

void InvariantAuditor::record(std::string invariant, std::string detail,
                              const std::string& trigger) {
  ++violations_total_;
  if (violations_.size() >= kMaxRecorded) return;
  violations_.push_back(
      Violation{std::move(invariant), std::move(detail), sim_.now(), trigger});
}

std::string InvariantAuditor::report() const {
  std::ostringstream os;
  os << violations_total_ << " violation(s) over " << checks_run_ << " check(s)";
  for (const Violation& v : violations_)
    os << "\n  [" << v.invariant << "] t=" << v.time << " (" << v.trigger << ") "
       << v.detail;
  return os.str();
}

Verdict InvariantAuditor::verdict(std::string label) const {
  Verdict v;
  v.label = std::move(label);
  v.checks = checks_run_;
  v.violations = violations_total_;
  if (violations_total_ != 0) v.report = report();
  return v;
}

std::string token_state_digest(const ibc::Bank& bank) {
  std::ostringstream os;
  for (const auto& [key, amount] : bank.balances()) {
    if (amount == 0) continue;  // emptied accounts are not state
    os << key.first << "|" << key.second << "=" << amount << ";";
  }
  os << "#";
  for (const auto& [denom, supply] : bank.supplies()) {
    if (supply == 0) continue;
    os << denom << "=" << supply << ";";
  }
  return os.str();
}

Verdict merge_verdicts(const std::vector<Verdict>& cells) {
  Verdict merged;
  for (const Verdict& v : cells) {
    merged.checks += v.checks;
    merged.violations += v.violations;
    if (v.report.empty()) continue;
    if (!merged.report.empty()) merged.report += "\n";
    merged.report += v.label.empty() ? v.report : v.label + ": " + v.report;
  }
  return merged;
}

}  // namespace bmg::audit
