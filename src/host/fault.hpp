// Deterministic fault injection for the host chain (chaos testing).
//
// The paper treats the host as hostile terrain: base-fee inclusion is
// a coin flip (§V-B), RPC nodes drop transactions, and a light client
// update needs ~36 sequential transactions to survive all of it
// (§V-A).  A FaultPlan lets tests and benches *provoke* those
// conditions on a schedule instead of waiting for the RNG to oblige:
// congestion windows collapse inclusion probabilities, outage windows
// produce empty blocks, blackholes swallow transactions without ever
// reporting a result, duplicate windows replay executions (exercising
// chunk-upload / seq-tracker idempotency), and fee spikes inflate the
// market components of the fee.
//
// All randomness is drawn from a dedicated RNG stream owned by the
// chain (never the inclusion stream), and every fault query is gated
// on `has_chain_faults()` — a plan with no chain-level windows leaves
// the chain bit-identical to a chain built without one.  Crash windows
// (kCrash) are *not* chain faults: they kill and restart agent
// processes (see sim::CrashableAgent / relayer::CrashController) and
// never touch the chain's fault RNG stream, so a crash-only plan keeps
// the chains byte-identical to a faultless run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bmg::host {

enum class FaultKind : std::uint8_t {
  kCongestion,  ///< multiply inclusion probabilities by `severity`
  kOutage,      ///< slots produce but include nothing
  kBlackhole,   ///< tx vanishes; its result handler never fires
  kDuplicate,   ///< tx executes a second time (ghost replay)
  kFeeSpike,    ///< market fee components multiplied by `severity`
  kCrash,       ///< agent process killed at `start`, restarted at `end`
  kReorg,       ///< optimistic tip forks: up to `severity` slots retracted
};

/// One scheduled fault over the half-open sim-time window [start, end).
struct FaultWindow {
  FaultKind kind = FaultKind::kCongestion;
  double start = 0;
  double end = 0;
  /// kCongestion: factor on inclusion probability in [0, 1].
  /// kFeeSpike: factor (>= 1) on priority/tip lamports.
  double severity = 1.0;
  /// kBlackhole / kDuplicate: per-transaction probability.
  double probability = 1.0;
  /// Restricts the fault to transactions whose label starts with this
  /// prefix; empty matches everything.  Outages ignore the filter
  /// (blocks are empty for everyone).  For kCrash the prefix matches
  /// agent names instead (empty = every registered agent).  For kReorg
  /// the prefix selects which retracted transactions the `survival`
  /// draw applies to (non-matching txs always survive the fork).
  std::string label_prefix;
  /// kReorg only: probability that a retracted transaction reappears
  /// on the winning fork (1.0 = pure rollback-and-replay; lower values
  /// kill txs, forcing submitters to resubmit across the fork).
  double survival = 1.0;
};

/// How often each fault class actually fired.
struct FaultCounters {
  std::uint64_t congestion_delayed = 0;  ///< txs that lost >=1 congested slot
  std::uint64_t outage_deferred = 0;     ///< txs that waited out >=1 outage slot
  std::uint64_t outage_expired = 0;      ///< txs dropped while waiting out an outage
  std::uint64_t blackholed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t fee_spiked = 0;
  // kReorg windows (tracked separately from the chain-fault gate; see
  // FaultPlan::has_reorg_windows()).
  std::uint64_t reorgs_triggered = 0;    ///< forks that actually fired
  std::uint64_t slots_rolled_back = 0;   ///< total retracted slots
  std::uint64_t txs_replayed = 0;        ///< retracted txs that survived onto the winning fork
  std::uint64_t txs_reorged_out = 0;     ///< retracted txs killed by the survival draw
};

/// A scriptable, composable schedule of fault windows.  Windows of the
/// same kind compose: congestion multipliers multiply, blackhole /
/// duplicate probabilities combine as independent events.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultWindow w);
  // Convenience builders (all return *this for chaining).
  FaultPlan& congestion(double start, double end, double severity,
                        std::string label_prefix = {});
  FaultPlan& outage(double start, double end);
  FaultPlan& blackhole(double start, double end, double probability,
                       std::string label_prefix = {});
  FaultPlan& duplicate(double start, double end, double probability,
                       std::string label_prefix = {});
  FaultPlan& fee_spike(double start, double end, double multiplier);
  /// Kills agents whose name starts with `agent` at `start` and
  /// restarts them at `end` (empty prefix = every registered agent).
  FaultPlan& crash(double start, double end, std::string agent = {});
  /// Arms fork windows: inside [start, end) each slot boundary forks
  /// with `probability`, retracting a uniform 1..max_depth recent
  /// slots (clamped to the unrooted suffix).  Retracted transactions
  /// matching `label_prefix` survive onto the winning fork with
  /// probability `survival` (others always survive).  max_depth == 0
  /// windows are inert and keep the chain byte-identical to the seed.
  FaultPlan& reorg(double start, double end, std::uint64_t max_depth,
                   double probability = 1.0, double survival = 1.0,
                   std::string label_prefix = {});

  void clear() {
    windows_.clear();
    chain_windows_ = 0;
    reorg_windows_ = 0;
  }
  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  /// Whether any window targets the *chain* (everything but kCrash).
  /// The chain gates its fault machinery — and its fault RNG draws —
  /// on this, so crash-only plans stay byte-identical to no plan.
  [[nodiscard]] bool has_chain_faults() const noexcept { return chain_windows_ > 0; }
  /// Whether any *effective* (max_depth >= 1) kReorg window exists.
  /// The chain arms its fork machinery — journalling, deferred
  /// commitment delivery and the dedicated reorg RNG stream — on this;
  /// kReorg windows never count as chain faults, so arming reorgs
  /// leaves the submit/fault RNG streams untouched.
  [[nodiscard]] bool has_reorg_windows() const noexcept { return reorg_windows_ > 0; }
  [[nodiscard]] const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }
  /// The kCrash windows only (consumed by relayer::CrashController).
  [[nodiscard]] std::vector<FaultWindow> crash_windows() const;

  // --- queries (evaluated by the chain) --------------------------------
  /// Product of active congestion severities for a tx labelled `label`.
  [[nodiscard]] double congestion_multiplier(double t, const std::string& label) const;
  [[nodiscard]] bool in_outage(double t) const;
  /// Combined probability that a tx submitted at `t` is blackholed.
  [[nodiscard]] double blackhole_probability(double t, const std::string& label) const;
  [[nodiscard]] double duplicate_probability(double t, const std::string& label) const;
  /// Product of active fee-spike multipliers.
  [[nodiscard]] double fee_multiplier(double t) const;
  /// Combined per-slot probability that the tip forks at time `t`.
  [[nodiscard]] double reorg_probability(double t) const;
  /// Deepest max_depth among active kReorg windows at `t` (0 = none).
  [[nodiscard]] std::uint64_t reorg_max_depth(double t) const;
  /// Product of active windows' survival for a retracted tx labelled
  /// `label`; windows whose prefix doesn't match contribute 1.
  [[nodiscard]] double reorg_survival(double t, const std::string& label) const;

 private:
  std::vector<FaultWindow> windows_;
  std::size_t chain_windows_ = 0;  ///< count of non-kCrash, non-kReorg windows
  std::size_t reorg_windows_ = 0;  ///< count of kReorg windows with max_depth >= 1
};

}  // namespace bmg::host
