// Deterministic fault injection for the host chain (chaos testing).
//
// The paper treats the host as hostile terrain: base-fee inclusion is
// a coin flip (§V-B), RPC nodes drop transactions, and a light client
// update needs ~36 sequential transactions to survive all of it
// (§V-A).  A FaultPlan lets tests and benches *provoke* those
// conditions on a schedule instead of waiting for the RNG to oblige:
// congestion windows collapse inclusion probabilities, outage windows
// produce empty blocks, blackholes swallow transactions without ever
// reporting a result, duplicate windows replay executions (exercising
// chunk-upload / seq-tracker idempotency), and fee spikes inflate the
// market components of the fee.
//
// All randomness is drawn from a dedicated RNG stream owned by the
// chain (never the inclusion stream), and every fault query is gated
// on `empty()` — an empty plan leaves the chain bit-identical to a
// chain built without one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bmg::host {

enum class FaultKind : std::uint8_t {
  kCongestion,  ///< multiply inclusion probabilities by `severity`
  kOutage,      ///< slots produce but include nothing
  kBlackhole,   ///< tx vanishes; its result handler never fires
  kDuplicate,   ///< tx executes a second time (ghost replay)
  kFeeSpike,    ///< market fee components multiplied by `severity`
};

/// One scheduled fault over the half-open sim-time window [start, end).
struct FaultWindow {
  FaultKind kind = FaultKind::kCongestion;
  double start = 0;
  double end = 0;
  /// kCongestion: factor on inclusion probability in [0, 1].
  /// kFeeSpike: factor (>= 1) on priority/tip lamports.
  double severity = 1.0;
  /// kBlackhole / kDuplicate: per-transaction probability.
  double probability = 1.0;
  /// Restricts the fault to transactions whose label starts with this
  /// prefix; empty matches everything.  Outages ignore the filter
  /// (blocks are empty for everyone).
  std::string label_prefix;
};

/// How often each fault class actually fired.
struct FaultCounters {
  std::uint64_t congestion_delayed = 0;  ///< txs that lost >=1 congested slot
  std::uint64_t outage_deferred = 0;     ///< txs that waited out >=1 outage slot
  std::uint64_t outage_expired = 0;      ///< txs dropped while waiting out an outage
  std::uint64_t blackholed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t fee_spiked = 0;
};

/// A scriptable, composable schedule of fault windows.  Windows of the
/// same kind compose: congestion multipliers multiply, blackhole /
/// duplicate probabilities combine as independent events.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultWindow w);
  // Convenience builders (all return *this for chaining).
  FaultPlan& congestion(double start, double end, double severity,
                        std::string label_prefix = {});
  FaultPlan& outage(double start, double end);
  FaultPlan& blackhole(double start, double end, double probability,
                       std::string label_prefix = {});
  FaultPlan& duplicate(double start, double end, double probability,
                       std::string label_prefix = {});
  FaultPlan& fee_spike(double start, double end, double multiplier);

  void clear() { windows_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  [[nodiscard]] const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }

  // --- queries (evaluated by the chain) --------------------------------
  /// Product of active congestion severities for a tx labelled `label`.
  [[nodiscard]] double congestion_multiplier(double t, const std::string& label) const;
  [[nodiscard]] bool in_outage(double t) const;
  /// Combined probability that a tx submitted at `t` is blackholed.
  [[nodiscard]] double blackhole_probability(double t, const std::string& label) const;
  [[nodiscard]] double duplicate_probability(double t, const std::string& label) const;
  /// Product of active fee-spike multipliers.
  [[nodiscard]] double fee_multiplier(double t) const;

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace bmg::host
