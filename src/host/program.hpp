// The smart-contract execution interface of the host runtime.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "host/constants.hpp"
#include "host/transaction.hpp"

namespace bmg::host {

/// Aborts the current transaction with a program-level error
/// (the contract "assert" of Alg. 1).
class TxError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transaction exceeded its compute budget.
class ComputeBudgetExceeded : public TxError {
 public:
  ComputeBudgetExceeded() : TxError("compute budget exceeded") {}
};

/// Account data grew beyond the maximum account size.
class AccountSizeExceeded : public TxError {
 public:
  AccountSizeExceeded() : TxError("account size exceeded") {}
};

class Chain;

/// Per-transaction execution context handed to programs.  Provides
/// metered syscalls, the verified pre-compile signatures, event
/// emission and block introspection.
class TxContext {
 public:
  TxContext(Chain& chain, const Transaction& tx, std::uint64_t slot, double time,
            std::uint64_t max_cu = kMaxComputeUnits)
      : chain_(chain), tx_(tx), slot_(slot), time_(time), max_cu_(max_cu) {}

  /// Charges `n` compute units; throws ComputeBudgetExceeded past the cap.
  void consume_cu(std::uint64_t n) {
    cu_used_ += n;
    if (cu_used_ > max_cu_) throw ComputeBudgetExceeded();
  }
  [[nodiscard]] std::uint64_t cu_used() const noexcept { return cu_used_; }

  /// Metered SHA-256 syscall.
  [[nodiscard]] Hash32 sha256(ByteView data);

  /// Signatures verified by the runtime's Ed25519 pre-compile before
  /// execution started.  Contracts trust these (Solana's instruction
  /// introspection pattern).
  [[nodiscard]] const std::vector<SigVerify>& verified_signatures() const noexcept {
    return tx_.sig_verifies;
  }

  [[nodiscard]] const crypto::PublicKey& payer() const noexcept { return tx_.payer; }
  [[nodiscard]] std::uint64_t slot() const noexcept { return slot_; }
  [[nodiscard]] double time() const noexcept { return time_; }

  /// Emits an on-chain event visible to off-chain agents.
  void emit_event(std::string name, Bytes data);

  /// Moves lamports from the payer to `to`; throws TxError on
  /// insufficient funds.
  void transfer_from_payer(const crypto::PublicKey& to, std::uint64_t lamports);

  /// Current lamport balance of an account (read-only).
  [[nodiscard]] std::uint64_t balance(const crypto::PublicKey& who) const;

  /// Program-initiated transfer between accounts the program controls
  /// (e.g. its stake vault).  Buffered and applied only if the
  /// transaction succeeds; throws TxError on insufficient funds.
  void transfer(const crypto::PublicKey& from, const crypto::PublicKey& to,
                std::uint64_t lamports);

 private:
  friend class Chain;
  Chain& chain_;
  const Transaction& tx_;
  std::uint64_t slot_;
  double time_;
  std::uint64_t max_cu_;
  std::uint64_t cu_used_ = 0;
};

/// A deployed smart contract.
class Program {
 public:
  virtual ~Program() = default;

  /// Executes one instruction.  Throw TxError (or derived) to abort
  /// the whole transaction.
  virtual void execute(TxContext& ctx, ByteView instruction_data) = 0;

  /// Serialized size of the program's account data; the runtime
  /// enforces kMaxAccountSize after every successful transaction.
  [[nodiscard]] virtual std::size_t account_bytes() const { return 0; }

  // --- fork/reorg support (host fork-aware mode) -----------------------
  /// Whether this program can be rolled back across a host fork.  A
  /// chain armed with reorg windows refuses to start with programs
  /// that cannot (Chain::start throws).
  [[nodiscard]] virtual bool fork_supported() const { return false; }
  /// Called once at Chain::start() on an armed chain, before any
  /// transaction executes: snapshot the genesis-equivalent state the
  /// chain will reset to before replaying the journal.
  virtual void fork_capture_baseline() {}
  /// Rewind all program state to the captured baseline.  The chain
  /// then silently re-executes the journalled winning-fork prefix.
  virtual void fork_reset_to_baseline() {}
};

}  // namespace bmg::host
