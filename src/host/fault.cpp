#include "host/fault.hpp"

#include <algorithm>

namespace bmg::host {

namespace {

bool label_matches(const FaultWindow& w, const std::string& label) {
  if (w.label_prefix.empty()) return true;
  return label.compare(0, w.label_prefix.size(), w.label_prefix) == 0;
}

bool active(const FaultWindow& w, double t) { return t >= w.start && t < w.end; }

}  // namespace

FaultPlan& FaultPlan::add(FaultWindow w) {
  if (w.kind == FaultKind::kReorg) {
    if (w.severity >= 1.0) ++reorg_windows_;  // depth-0 windows are inert
  } else if (w.kind != FaultKind::kCrash) {
    ++chain_windows_;
  }
  windows_.push_back(std::move(w));
  return *this;
}

FaultPlan& FaultPlan::congestion(double start, double end, double severity,
                                 std::string label_prefix) {
  return add({FaultKind::kCongestion, start, end, severity, 1.0,
              std::move(label_prefix)});
}

FaultPlan& FaultPlan::outage(double start, double end) {
  return add({FaultKind::kOutage, start, end, 0.0, 1.0, {}});
}

FaultPlan& FaultPlan::blackhole(double start, double end, double probability,
                                std::string label_prefix) {
  return add({FaultKind::kBlackhole, start, end, 1.0, probability,
              std::move(label_prefix)});
}

FaultPlan& FaultPlan::duplicate(double start, double end, double probability,
                                std::string label_prefix) {
  return add({FaultKind::kDuplicate, start, end, 1.0, probability,
              std::move(label_prefix)});
}

FaultPlan& FaultPlan::fee_spike(double start, double end, double multiplier) {
  return add({FaultKind::kFeeSpike, start, end, multiplier, 1.0, {}});
}

FaultPlan& FaultPlan::crash(double start, double end, std::string agent) {
  return add({FaultKind::kCrash, start, end, 1.0, 1.0, std::move(agent)});
}

FaultPlan& FaultPlan::reorg(double start, double end, std::uint64_t max_depth,
                            double probability, double survival,
                            std::string label_prefix) {
  return add({FaultKind::kReorg, start, end, static_cast<double>(max_depth),
              probability, std::move(label_prefix), survival});
}

std::vector<FaultWindow> FaultPlan::crash_windows() const {
  std::vector<FaultWindow> out;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kCrash) out.push_back(w);
  return out;
}

double FaultPlan::congestion_multiplier(double t, const std::string& label) const {
  double m = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kCongestion && active(w, t) && label_matches(w, label))
      m *= w.severity;
  return m;
}

bool FaultPlan::in_outage(double t) const {
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kOutage && active(w, t)) return true;
  return false;
}

double FaultPlan::blackhole_probability(double t, const std::string& label) const {
  double p_none = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kBlackhole && active(w, t) && label_matches(w, label))
      p_none *= 1.0 - w.probability;
  return 1.0 - p_none;
}

double FaultPlan::duplicate_probability(double t, const std::string& label) const {
  double p_none = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kDuplicate && active(w, t) && label_matches(w, label))
      p_none *= 1.0 - w.probability;
  return 1.0 - p_none;
}

double FaultPlan::fee_multiplier(double t) const {
  double m = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kFeeSpike && active(w, t)) m *= w.severity;
  return m;
}

double FaultPlan::reorg_probability(double t) const {
  double p_none = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kReorg && w.severity >= 1.0 && active(w, t))
      p_none *= 1.0 - w.probability;
  return 1.0 - p_none;
}

std::uint64_t FaultPlan::reorg_max_depth(double t) const {
  std::uint64_t depth = 0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kReorg && active(w, t))
      depth = std::max(depth, static_cast<std::uint64_t>(w.severity));
  return depth;
}

double FaultPlan::reorg_survival(double t, const std::string& label) const {
  double s = 1.0;
  for (const auto& w : windows_)
    if (w.kind == FaultKind::kReorg && w.severity >= 1.0 && active(w, t) &&
        label_matches(w, label))
      s *= w.survival;
  return s;
}

}  // namespace bmg::host
