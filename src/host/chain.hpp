// The host blockchain runtime: slots, mempool, fee market, programs,
// accounts and events.  A deliberately Solana-shaped simulator — it
// enforces the transaction-size, compute-budget and account-size
// limits that the paper's implementation had to engineer around, and
// implements the three fee policies the evaluation compares.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "host/fault.hpp"
#include "host/program.hpp"
#include "host/transaction.hpp"
#include "sim/scheduler.hpp"

namespace bmg::host {

/// On-chain event emitted by a program.
struct Event {
  std::uint64_t slot = 0;
  double time = 0;
  std::string program;
  std::string name;
  Bytes data;
};

/// How much finality a subscriber (or pipeline) demands before acting
/// on chain state — mirroring Solana's commitment levels.
enum class Commitment : std::uint8_t {
  kProcessed,  ///< optimistic tip: instant delivery, may be retracted
  kConfirmed,  ///< delivered once the slot is `confirmations` slots old
  kRooted,     ///< delivered once the slot can no longer be reorged
};

/// Options for commitment-aware Chain::subscribe.  On a chain that is
/// not fork-aware every level degenerates to processed (blocks are
/// final the instant they are produced), which keeps non-fork runs
/// byte-identical to the seed.
struct SubscribeOptions {
  Commitment level = Commitment::kProcessed;
  /// kConfirmed only: how many slots old an event must be.
  std::uint64_t confirmations = 1;
  /// kProcessed only: invoked (newest first) for every already
  /// delivered event retracted by a reorg.  Confirmed subscribers get
  /// retractions only when a reorg reaches deeper than their lag.
  std::function<void(const Event&)> on_retract;
};

/// Tunables of the inclusion model: probability a pending transaction
/// is picked up in any given slot, per fee policy.  These express how
/// congested the host chain is.
struct ChainConfig {
  double p_include_base = 0.55;
  double p_include_priority = 0.92;
  double p_include_bundle = 0.97;
  /// Network propagation delay from submit to mempool visibility.
  double mempool_latency_s = 0.15;

  // Host-chain parameters (defaults are Solana's — §IV).  The paper's
  // §VI-D argues the guest design ports to other hosts (TRON, NEAR);
  // these knobs let the same contract run under different constraints.
  std::size_t max_tx_size = kMaxTransactionSize;
  std::uint64_t max_compute_units = kMaxComputeUnits;
  std::uint64_t block_compute_units = kBlockComputeUnits;
  double slot_seconds = kSlotSeconds;
  std::size_t max_account_size = kMaxAccountSize;

  /// Scheduled fault injection (empty = faithful chain, bit-identical
  /// to a chain built before faults existed).  Fault randomness draws
  /// from its own stream so the inclusion RNG is never perturbed.
  FaultPlan fault;
  std::uint64_t fault_seed = 0xFA01'7F4A'11C3'0D5Eull;

  // --- fork/reorg model (fork-aware mode) ----------------------------
  /// Arms the fork machinery even without reorg windows in the plan —
  /// needed to measure rooted-commitment latency on a fork-capable
  /// chain, and to let tests append reorg windows after start().  The
  /// chain also arms itself when the plan already holds effective
  /// reorg windows at start().  Off (and plan reorg-free) = the
  /// historical linear chain, byte-identical to the seed.
  bool fork_aware = false;
  /// Slots behind the optimistic tip at which a slot roots (becomes
  /// irreversible); bounds every reorg depth to rooted_lag_slots - 1.
  std::uint64_t rooted_lag_slots = 32;
  /// Dedicated RNG stream for reorg trigger/depth/survival draws, so
  /// arming forks never perturbs the inclusion or fault streams.
  std::uint64_t reorg_seed = 0x4E0'26F0'5CA1'D21Bull;
};

class Chain {
 public:
  using EventHandler = std::function<void(const Event&)>;
  using ResultHandler = std::function<void(const TxResult&)>;

  Chain(sim::Simulation& sim, Rng rng, ChainConfig cfg = {});

  // -- setup ----------------------------------------------------------
  void register_program(const std::string& name, std::unique_ptr<Program> program);
  [[nodiscard]] Program& program(const std::string& name);
  template <typename T>
  [[nodiscard]] T& program_as(const std::string& name) {
    return dynamic_cast<T&>(program(name));
  }

  void airdrop(const crypto::PublicKey& who, std::uint64_t lamports);
  [[nodiscard]] std::uint64_t balance(const crypto::PublicKey& who) const;

  /// Charges the rent-exempt deposit for `bytes` of account data from
  /// `payer` and records it as recoverable (§V-D).
  void charge_rent(const crypto::PublicKey& payer, std::size_t bytes);
  [[nodiscard]] std::uint64_t rent_deposits(const crypto::PublicKey& payer) const;

  /// Begins slot production (call once after setup).
  void start();

  // -- usage ----------------------------------------------------------
  /// Submits a transaction.  The result handler fires when the tx is
  /// executed or dropped.  Oversized transactions fail immediately.
  void submit(Transaction tx, ResultHandler on_result = {});

  void subscribe(const std::string& program, EventHandler handler);
  /// Commitment-aware subscription.  On a non-fork-aware chain all
  /// levels deliver inline at execution (processed semantics) and no
  /// retraction ever fires; on a fork-aware chain confirmed/rooted
  /// events are delivered from the journal once old enough, inline at
  /// slot boundaries (no extra simulation events either way).
  void subscribe(const std::string& program, EventHandler handler,
                 SubscribeOptions options);

  // --- fork/finality introspection -----------------------------------
  /// Newest slot that can no longer be reorged.
  [[nodiscard]] std::uint64_t rooted_slot() const noexcept {
    return slot_ > cfg_.rooted_lag_slots ? slot_ - cfg_.rooted_lag_slots : 0;
  }
  /// Whether the fork machinery is armed (set once at start()).
  [[nodiscard]] bool fork_mode() const noexcept { return fork_mode_; }
  /// Incremented on every reorg; consumers compare epochs to detect
  /// that previously observed optimistic state may have been retracted.
  [[nodiscard]] std::uint64_t fork_epoch() const noexcept { return fork_epoch_; }

  /// Calls `fn` once `slot` roots — inline at the slot boundary that
  /// roots it (immediately if already rooted, or at registration on a
  /// non-fork-aware chain where inclusion is final).  Waits survive
  /// reorgs: slot numbers never rewind, only their contents change.
  using RootedWaitId = std::uint64_t;
  RootedWaitId when_rooted(std::uint64_t slot, std::function<void()> fn);
  void cancel_rooted(RootedWaitId id);

  [[nodiscard]] std::uint64_t slot() const noexcept { return slot_; }
  [[nodiscard]] double time() const noexcept;

  // -- accounting -----------------------------------------------------
  struct PayerStats {
    std::uint64_t fees_lamports = 0;
    std::uint64_t tx_count = 0;
    std::uint64_t sig_count = 0;  ///< tx signature + pre-compile sigs
  };
  [[nodiscard]] const PayerStats& payer_stats(const crypto::PublicKey& who) const;
  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  [[nodiscard]] std::uint64_t failed_count() const noexcept { return failed_; }
  [[nodiscard]] std::uint64_t dropped_count() const noexcept { return dropped_; }

  // -- fault injection ------------------------------------------------
  /// The live fault schedule; mutable so tests can script windows at
  /// runtime (e.g. start an outage mid-run).
  [[nodiscard]] FaultPlan& fault_plan() noexcept { return cfg_.fault; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return cfg_.fault; }
  [[nodiscard]] const FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

 private:
  struct PendingTx {
    Transaction tx;
    ResultHandler on_result;
    /// Slot after which the blockhash is too old (fault path only; the
    /// fault-free path pre-draws inclusion and never consults this).
    std::uint64_t expiry_slot = UINT64_MAX;
  };

  /// One executed transaction as recorded for fork replay: enough to
  /// re-execute it silently (rebuilding program state bit-for-bit) or
  /// visibly (winning fork), and to feed deferred commitment delivery.
  struct JournalTx {
    Transaction tx;
    ResultHandler on_result;
    TxResult result;            ///< as delivered on the current fork
    std::vector<Event> events;  ///< dispatched events (empty on failure)
    bool sig_ok = true;         ///< pre-compile verdict (replay skips crypto)
  };

  /// A deferred (confirmed/rooted) subscriber with its delivery cursor.
  struct DeferredSub {
    std::string program;
    EventHandler handler;
    EventHandler on_retract;
    Commitment level = Commitment::kConfirmed;
    std::uint64_t confirmations = 1;
    std::uint64_t cursor = 1;  ///< next journal slot to deliver
  };

  struct RootedWait {
    std::uint64_t slot = 0;
    std::function<void()> fn;
  };

  enum class ExecMode : std::uint8_t {
    kLive,           ///< normal execution: dispatch, notify, journal
    kSilentReplay,   ///< state reconstruction only: no events, no handlers
    kVisibleReplay,  ///< winning-fork re-execution: dispatch + notify + journal
  };

  void on_slot();
  void execute_tx(PendingTx& ptx);
  /// Core execution at explicit (slot, time) coordinates; replay modes
  /// reuse the journalled pre-compile verdict instead of re-verifying.
  TxResult execute_tx_at(PendingTx& ptx, std::uint64_t slot, double time,
                         ExecMode mode, bool journaled_sig_ok);
  [[nodiscard]] double inclusion_probability(const FeePolicy& fee) const;
  /// Fault-aware half of submit(): per-slot inclusion scan honouring
  /// congestion/outage windows, blackholes and duplicate replays.
  void submit_with_faults(Transaction tx, ResultHandler on_result,
                          std::uint64_t first_slot);

  // --- fork machinery (armed chains only) ------------------------------
  void maybe_trigger_reorg();
  void perform_reorg(std::uint64_t depth);
  /// Deliver journal events to confirmed/rooted subscribers whose
  /// target advanced, then fire matured rooted waits.  Inline at the
  /// end of every slot.
  void deliver_deferred();
  void fire_rooted_waits();
  [[nodiscard]] std::uint64_t deferred_target(const DeferredSub& sub) const;

  sim::Simulation& sim_;
  Rng rng_;
  Rng fault_rng_;
  Rng reorg_rng_;
  ChainConfig cfg_;
  FaultCounters fault_counters_;

  std::unordered_map<std::string, std::unique_ptr<Program>> programs_;
  std::unordered_map<std::string, std::vector<EventHandler>> subscribers_;
  std::map<crypto::PublicKey, std::uint64_t> balances_;
  std::map<crypto::PublicKey, std::uint64_t> rent_deposits_;
  std::map<crypto::PublicKey, PayerStats> payer_stats_;

  /// Transactions keyed by the slot chosen for their inclusion.
  std::map<std::uint64_t, std::vector<PendingTx>> pending_;

  std::uint64_t slot_ = 0;
  bool started_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t dropped_ = 0;

  // --- fork state ------------------------------------------------------
  bool fork_mode_ = false;
  std::uint64_t fork_epoch_ = 0;
  /// Per-slot execution journal (armed chains only).  Never pruned:
  /// rollback is genesis replay, O(executed history) per reorg — fine
  /// for chaos-window runs, documented in DESIGN §15.
  std::map<std::uint64_t, std::vector<JournalTx>> journal_;
  std::vector<DeferredSub> deferred_subs_;
  /// Processed subscribers that asked for retraction callbacks.
  std::vector<std::pair<std::string, EventHandler>> processed_retract_;
  std::map<RootedWaitId, RootedWait> rooted_waits_;
  RootedWaitId next_rooted_wait_ = 1;
  /// Chain-ledger baseline captured at start() for genesis replay.
  struct Baseline {
    std::map<crypto::PublicKey, std::uint64_t> balances;
    std::map<crypto::PublicKey, std::uint64_t> rent_deposits;
    std::map<crypto::PublicKey, PayerStats> payer_stats;
    std::uint64_t executed = 0;
    std::uint64_t failed = 0;
    std::uint64_t fee_spiked = 0;
  };
  Baseline baseline_;

  friend class TxContext;
  /// Event/transfer buffers for the transaction being executed.
  std::vector<Event> tx_event_buffer_;
  std::vector<std::tuple<crypto::PublicKey, crypto::PublicKey, std::uint64_t>>
      tx_transfer_buffer_;
};

}  // namespace bmg::host
