// The host blockchain runtime: slots, mempool, fee market, programs,
// accounts and events.  A deliberately Solana-shaped simulator — it
// enforces the transaction-size, compute-budget and account-size
// limits that the paper's implementation had to engineer around, and
// implements the three fee policies the evaluation compares.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "host/fault.hpp"
#include "host/program.hpp"
#include "host/transaction.hpp"
#include "sim/scheduler.hpp"

namespace bmg::host {

/// On-chain event emitted by a program.
struct Event {
  std::uint64_t slot = 0;
  double time = 0;
  std::string program;
  std::string name;
  Bytes data;
};

/// Tunables of the inclusion model: probability a pending transaction
/// is picked up in any given slot, per fee policy.  These express how
/// congested the host chain is.
struct ChainConfig {
  double p_include_base = 0.55;
  double p_include_priority = 0.92;
  double p_include_bundle = 0.97;
  /// Network propagation delay from submit to mempool visibility.
  double mempool_latency_s = 0.15;

  // Host-chain parameters (defaults are Solana's — §IV).  The paper's
  // §VI-D argues the guest design ports to other hosts (TRON, NEAR);
  // these knobs let the same contract run under different constraints.
  std::size_t max_tx_size = kMaxTransactionSize;
  std::uint64_t max_compute_units = kMaxComputeUnits;
  std::uint64_t block_compute_units = kBlockComputeUnits;
  double slot_seconds = kSlotSeconds;
  std::size_t max_account_size = kMaxAccountSize;

  /// Scheduled fault injection (empty = faithful chain, bit-identical
  /// to a chain built before faults existed).  Fault randomness draws
  /// from its own stream so the inclusion RNG is never perturbed.
  FaultPlan fault;
  std::uint64_t fault_seed = 0xFA01'7F4A'11C3'0D5Eull;
};

class Chain {
 public:
  using EventHandler = std::function<void(const Event&)>;
  using ResultHandler = std::function<void(const TxResult&)>;

  Chain(sim::Simulation& sim, Rng rng, ChainConfig cfg = {});

  // -- setup ----------------------------------------------------------
  void register_program(const std::string& name, std::unique_ptr<Program> program);
  [[nodiscard]] Program& program(const std::string& name);
  template <typename T>
  [[nodiscard]] T& program_as(const std::string& name) {
    return dynamic_cast<T&>(program(name));
  }

  void airdrop(const crypto::PublicKey& who, std::uint64_t lamports);
  [[nodiscard]] std::uint64_t balance(const crypto::PublicKey& who) const;

  /// Charges the rent-exempt deposit for `bytes` of account data from
  /// `payer` and records it as recoverable (§V-D).
  void charge_rent(const crypto::PublicKey& payer, std::size_t bytes);
  [[nodiscard]] std::uint64_t rent_deposits(const crypto::PublicKey& payer) const;

  /// Begins slot production (call once after setup).
  void start();

  // -- usage ----------------------------------------------------------
  /// Submits a transaction.  The result handler fires when the tx is
  /// executed or dropped.  Oversized transactions fail immediately.
  void submit(Transaction tx, ResultHandler on_result = {});

  void subscribe(const std::string& program, EventHandler handler);

  [[nodiscard]] std::uint64_t slot() const noexcept { return slot_; }
  [[nodiscard]] double time() const noexcept;

  // -- accounting -----------------------------------------------------
  struct PayerStats {
    std::uint64_t fees_lamports = 0;
    std::uint64_t tx_count = 0;
    std::uint64_t sig_count = 0;  ///< tx signature + pre-compile sigs
  };
  [[nodiscard]] const PayerStats& payer_stats(const crypto::PublicKey& who) const;
  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  [[nodiscard]] std::uint64_t failed_count() const noexcept { return failed_; }
  [[nodiscard]] std::uint64_t dropped_count() const noexcept { return dropped_; }

  // -- fault injection ------------------------------------------------
  /// The live fault schedule; mutable so tests can script windows at
  /// runtime (e.g. start an outage mid-run).
  [[nodiscard]] FaultPlan& fault_plan() noexcept { return cfg_.fault; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return cfg_.fault; }
  [[nodiscard]] const FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

 private:
  struct PendingTx {
    Transaction tx;
    ResultHandler on_result;
    /// Slot after which the blockhash is too old (fault path only; the
    /// fault-free path pre-draws inclusion and never consults this).
    std::uint64_t expiry_slot = UINT64_MAX;
  };

  void on_slot();
  void execute_tx(PendingTx& ptx);
  [[nodiscard]] double inclusion_probability(const FeePolicy& fee) const;
  /// Fault-aware half of submit(): per-slot inclusion scan honouring
  /// congestion/outage windows, blackholes and duplicate replays.
  void submit_with_faults(Transaction tx, ResultHandler on_result,
                          std::uint64_t first_slot);

  sim::Simulation& sim_;
  Rng rng_;
  Rng fault_rng_;
  ChainConfig cfg_;
  FaultCounters fault_counters_;

  std::unordered_map<std::string, std::unique_ptr<Program>> programs_;
  std::unordered_map<std::string, std::vector<EventHandler>> subscribers_;
  std::map<crypto::PublicKey, std::uint64_t> balances_;
  std::map<crypto::PublicKey, std::uint64_t> rent_deposits_;
  std::map<crypto::PublicKey, PayerStats> payer_stats_;

  /// Transactions keyed by the slot chosen for their inclusion.
  std::map<std::uint64_t, std::vector<PendingTx>> pending_;

  std::uint64_t slot_ = 0;
  bool started_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t dropped_ = 0;

  friend class TxContext;
  /// Event/transfer buffers for the transaction being executed.
  std::vector<Event> tx_event_buffer_;
  std::vector<std::tuple<crypto::PublicKey, crypto::PublicKey, std::uint64_t>>
      tx_transfer_buffer_;
};

}  // namespace bmg::host
