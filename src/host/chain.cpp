#include "host/chain.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/sha256.hpp"

namespace bmg::host {

Hash32 TxContext::sha256(ByteView data) {
  consume_cu(kCuSha256Base + kCuSha256PerByte * data.size());
  return crypto::Sha256::digest(data);
}

void TxContext::emit_event(std::string name, Bytes data) {
  chain_.tx_event_buffer_.push_back(
      Event{slot_, time_, /*program=*/"", std::move(name), std::move(data)});
}

std::uint64_t TxContext::balance(const crypto::PublicKey& who) const {
  return chain_.balance(who);
}

void TxContext::transfer(const crypto::PublicKey& from, const crypto::PublicKey& to,
                         std::uint64_t lamports) {
  std::uint64_t already_spent = 0;
  for (const auto& t : chain_.tx_transfer_buffer_)
    if (std::get<0>(t) == from) already_spent += std::get<2>(t);
  if (chain_.balance(from) < already_spent + lamports)
    throw TxError("transfer: insufficient funds");
  chain_.tx_transfer_buffer_.emplace_back(from, to, lamports);
}

void TxContext::transfer_from_payer(const crypto::PublicKey& to, std::uint64_t lamports) {
  transfer(tx_.payer, to, lamports);
}

Chain::Chain(sim::Simulation& sim, Rng rng, ChainConfig cfg)
    : sim_(sim),
      rng_(rng),
      fault_rng_(cfg.fault_seed),
      reorg_rng_(cfg.reorg_seed),
      cfg_(std::move(cfg)) {}

void Chain::register_program(const std::string& name, std::unique_ptr<Program> program) {
  programs_[name] = std::move(program);
}

Program& Chain::program(const std::string& name) {
  const auto it = programs_.find(name);
  if (it == programs_.end()) throw std::out_of_range("no such program: " + name);
  return *it->second;
}

void Chain::airdrop(const crypto::PublicKey& who, std::uint64_t lamports) {
  balances_[who] += lamports;
}

std::uint64_t Chain::balance(const crypto::PublicKey& who) const {
  const auto it = balances_.find(who);
  return it == balances_.end() ? 0 : it->second;
}

void Chain::charge_rent(const crypto::PublicKey& payer, std::size_t bytes) {
  const std::uint64_t deposit = kRentLamportsPerByte * bytes;
  auto& bal = balances_[payer];
  if (bal < deposit) throw std::runtime_error("charge_rent: insufficient funds");
  bal -= deposit;
  rent_deposits_[payer] += deposit;
}

std::uint64_t Chain::rent_deposits(const crypto::PublicKey& payer) const {
  const auto it = rent_deposits_.find(payer);
  return it == rent_deposits_.end() ? 0 : it->second;
}

double Chain::time() const noexcept { return sim_.now(); }

void Chain::start() {
  if (started_) return;
  started_ = true;
  if (cfg_.fork_aware || cfg_.fault.has_reorg_windows()) {
    fork_mode_ = true;
    // Every registered program must be rollback-capable before the
    // first transaction executes; arming mid-run is not supported.
    for (auto& [name, prog] : programs_) {
      if (!prog->fork_supported())
        throw std::runtime_error("chain: program '" + name +
                                 "' does not support fork mode "
                                 "(fork_supported() == false)");
      prog->fork_capture_baseline();
    }
    baseline_.balances = balances_;
    baseline_.rent_deposits = rent_deposits_;
    baseline_.payer_stats = payer_stats_;
    baseline_.executed = executed_;
    baseline_.failed = failed_;
    baseline_.fee_spiked = fault_counters_.fee_spiked;
  }
  sim_.after(cfg_.slot_seconds, [this] { on_slot(); });
}

double Chain::inclusion_probability(const FeePolicy& fee) const {
  switch (fee.kind) {
    case FeePolicy::Kind::kPriority:
      return cfg_.p_include_priority;
    case FeePolicy::Kind::kBundle:
      return cfg_.p_include_bundle;
    case FeePolicy::Kind::kBase:
    default:
      return cfg_.p_include_base;
  }
}

void Chain::submit(Transaction tx, ResultHandler on_result) {
  if (tx.wire_size() > cfg_.max_tx_size) {
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction too large (" + std::to_string(tx.wire_size()) + " > " +
                std::to_string(cfg_.max_tx_size) + " bytes)";
    res.label = tx.label;
    if (on_result)
      sim_.after(0, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  // First slot at which the transaction is visible to block producers.
  const double visible_at = sim_.now() + cfg_.mempool_latency_s;
  const auto first_slot =
      static_cast<std::uint64_t>(std::ceil(visible_at / cfg_.slot_seconds));

  if (cfg_.fault.has_chain_faults()) {
    submit_with_faults(std::move(tx), std::move(on_result), first_slot);
    return;
  }

  // Geometric inclusion delay driven by the fee policy.
  const double p = inclusion_probability(tx.fee);
  std::uint64_t extra = 0;
  while (!rng_.chance(p) && extra <= kTxExpirySlots) ++extra;

  if (extra > kTxExpirySlots) {
    ++dropped_;
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction expired (blockhash too old)";
    res.label = tx.label;
    const double expiry_time =
        static_cast<double>(first_slot + kTxExpirySlots) * cfg_.slot_seconds;
    if (on_result)
      sim_.at(expiry_time, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  const std::uint64_t target = std::max(first_slot + extra, slot_ + 1);
  pending_[target].push_back(PendingTx{std::move(tx), std::move(on_result)});
}

void Chain::submit_with_faults(Transaction tx, ResultHandler on_result,
                               std::uint64_t first_slot) {
  const double now = sim_.now();

  // Blackhole: the tx vanishes between the submitter and the cluster;
  // no result handler ever fires.  This is what forces real timeout
  // handling in the relayer pipeline.
  const double p_bh = cfg_.fault.blackhole_probability(now, tx.label);
  if (p_bh > 0 && fault_rng_.chance(p_bh)) {
    ++fault_counters_.blackholed;
    return;
  }

  // Per-slot inclusion scan: each candidate slot applies the congestion
  // multiplier active at that slot's wall time, and outage slots
  // include nothing at all.
  const double p0 = inclusion_probability(tx.fee);
  const std::uint64_t expiry_slot = first_slot + kTxExpirySlots;
  std::uint64_t chosen = 0;
  bool included = false;
  bool congested = false;
  bool waited_out_outage = false;
  for (std::uint64_t s = std::max(first_slot, slot_ + 1); s <= expiry_slot; ++s) {
    const double t = static_cast<double>(s) * cfg_.slot_seconds;
    if (cfg_.fault.in_outage(t)) {
      waited_out_outage = true;
      continue;
    }
    const double m = cfg_.fault.congestion_multiplier(t, tx.label);
    const double p = std::min(p0 * m, 1.0);
    if (p <= 0) {
      congested = true;
      continue;
    }
    if (fault_rng_.chance(p)) {
      chosen = s;
      included = true;
      break;
    }
    if (m < 1.0) congested = true;
  }
  if (congested) ++fault_counters_.congestion_delayed;
  if (waited_out_outage) ++fault_counters_.outage_deferred;

  if (!included) {
    ++dropped_;
    if (waited_out_outage) ++fault_counters_.outage_expired;
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction expired (blockhash too old)";
    res.label = tx.label;
    const double expiry_time = static_cast<double>(expiry_slot) * cfg_.slot_seconds;
    if (on_result)
      sim_.at(expiry_time, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  // Duplicate fault: a ghost replay lands one slot later with no
  // handler — the program must tolerate the second execution.
  const double p_dup = cfg_.fault.duplicate_probability(now, tx.label);
  if (p_dup > 0 && fault_rng_.chance(p_dup)) {
    ++fault_counters_.duplicated;
    pending_[chosen + 1].push_back(PendingTx{tx, {}, expiry_slot});
  }

  pending_[chosen].push_back(PendingTx{std::move(tx), std::move(on_result), expiry_slot});
}

void Chain::on_slot() {
  ++slot_;
  if (fork_mode_) maybe_trigger_reorg();

  if (cfg_.fault.has_chain_faults() && cfg_.fault.in_outage(sim_.now())) {
    // Outage slot: produced, but includes nothing.  Defer everything to
    // the next slot, expiring transactions whose blockhash aged out.
    const auto it = pending_.find(slot_);
    if (it != pending_.end()) {
      std::vector<PendingTx> batch = std::move(it->second);
      pending_.erase(it);
      for (auto& ptx : batch) {
        if (slot_ >= ptx.expiry_slot) {
          ++fault_counters_.outage_expired;
          ++dropped_;
          if (ptx.on_result) {
            TxResult res;
            res.executed = false;
            res.success = false;
            res.error = "transaction expired (blockhash too old)";
            res.label = ptx.tx.label;
            sim_.after(0, [on_result = std::move(ptx.on_result), res] { on_result(res); });
          }
          continue;
        }
        ++fault_counters_.outage_deferred;
        pending_[slot_ + 1].push_back(std::move(ptx));
      }
    }
  } else {
    const auto it = pending_.find(slot_);
    if (it != pending_.end()) {
      std::vector<PendingTx> batch = std::move(it->second);
      pending_.erase(it);

      // Block producer ordering: bundles first, then priority fee by
      // price, then base-fee FIFO.
      std::stable_sort(batch.begin(), batch.end(),
                       [](const PendingTx& a, const PendingTx& b) {
        auto rank = [](const FeePolicy& f) {
          switch (f.kind) {
            case FeePolicy::Kind::kBundle:
              return 0;
            case FeePolicy::Kind::kPriority:
              return 1;
            default:
              return 2;
          }
        };
        const int ra = rank(a.tx.fee), rb = rank(b.tx.fee);
        if (ra != rb) return ra < rb;
        return a.tx.fee.cu_price_microlamports > b.tx.fee.cu_price_microlamports;
      });

      std::uint64_t block_cu = 0;
      for (auto& ptx : batch) {
        if (block_cu >= cfg_.block_compute_units) {
          // Block full: spill to the next slot.
          pending_[slot_ + 1].push_back(std::move(ptx));
          continue;
        }
        execute_tx(ptx);
        block_cu += cfg_.max_compute_units;  // conservative per-tx reservation
      }
    }
  }

  if (fork_mode_) {
    deliver_deferred();
    fire_rooted_waits();
  }
  sim_.after(cfg_.slot_seconds, [this] { on_slot(); });
}

FeeBreakdown compute_fee(const Transaction& tx, std::uint64_t cu_used) {
  FeeBreakdown fee;
  fee.base_lamports =
      kLamportsPerSignature * (1 + static_cast<std::uint64_t>(tx.sig_verifies.size()));
  if (tx.fee.kind == FeePolicy::Kind::kPriority)
    fee.priority_lamports = tx.fee.cu_price_microlamports * cu_used / 1'000'000;
  if (tx.fee.kind == FeePolicy::Kind::kBundle) fee.tip_lamports = tx.fee.tip_lamports;
  return fee;
}

void Chain::execute_tx(PendingTx& ptx) {
  (void)execute_tx_at(ptx, slot_, sim_.now(), ExecMode::kLive, true);
}

TxResult Chain::execute_tx_at(PendingTx& ptx, std::uint64_t slot, double time,
                              ExecMode mode, bool journaled_sig_ok) {
  const Transaction& tx = ptx.tx;
  TxResult res;
  res.executed = true;
  res.slot = slot;
  res.time = time;
  res.label = tx.label;

  tx_event_buffer_.clear();
  tx_transfer_buffer_.clear();

  TxContext ctx(*this, tx, slot, time, cfg_.max_compute_units);
  std::string touched_program;
  bool sig_ok = true;
  try {
    // Ed25519 pre-compile runs before the programs.  All signatures of
    // a transaction are checked as one batch (real runtimes verify the
    // whole packet's signatures up front, too).  Fork replays charge
    // the same compute but reuse the journalled verdict — the bytes
    // are unchanged, so re-verifying would only burn wall clock.
    ctx.consume_cu(kCuEd25519PerSig * tx.sig_verifies.size());
    if (!tx.sig_verifies.empty()) {
      if (mode == ExecMode::kLive) {
        std::vector<crypto::ed25519::VerifyItem> items;
        items.reserve(tx.sig_verifies.size());
        for (const auto& sv : tx.sig_verifies)
          items.push_back({sv.pubkey.raw(), sv.message.view(), sv.signature.raw()});
        for (const bool good : crypto::ed25519::verify_batch(items))
          if (!good) {
            sig_ok = false;
            throw TxError("ed25519 pre-compile: invalid signature");
          }
      } else if (!journaled_sig_ok) {
        sig_ok = false;
        throw TxError("ed25519 pre-compile: invalid signature");
      }
    }
    for (const auto& ins : tx.instructions) {
      ctx.consume_cu(kCuInstructionBase);
      Program& prog = program(ins.program);
      touched_program = ins.program;
      prog.execute(ctx, ins.data);
      if (prog.account_bytes() > cfg_.max_account_size) throw AccountSizeExceeded();
    }
    res.success = true;
  } catch (const TxError& e) {
    res.success = false;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.success = false;
    res.error = std::string("program panic: ") + e.what();
  }

  res.cu_used = ctx.cu_used();
  res.fee = compute_fee(tx, ctx.cu_used());

  if (cfg_.fault.has_chain_faults()) {
    // Fee spike: the market components (priority fee, bundle tip) cost
    // a multiple of their quoted price; the protocol base fee is fixed.
    // Replays evaluate the multiplier at the original execution time,
    // reproducing the journalled charge exactly.
    const double m = cfg_.fault.fee_multiplier(time);
    if (m != 1.0 && (res.fee.priority_lamports > 0 || res.fee.tip_lamports > 0)) {
      res.fee.priority_lamports =
          static_cast<std::uint64_t>(static_cast<double>(res.fee.priority_lamports) * m);
      res.fee.tip_lamports =
          static_cast<std::uint64_t>(static_cast<double>(res.fee.tip_lamports) * m);
      ++fault_counters_.fee_spiked;
    }
  }

  // Charge fees (saturating — a payer going broke is an operator
  // problem, not a simulator crash).
  auto& bal = balances_[tx.payer];
  bal -= std::min(bal, res.fee.total());
  auto& stats = payer_stats_[tx.payer];
  stats.fees_lamports += res.fee.total();
  stats.tx_count += 1;
  stats.sig_count += 1 + tx.sig_verifies.size();

  std::vector<Event> events;
  if (res.success) {
    ++executed_;
    // Apply buffered transfers, then flush events to subscribers.
    for (const auto& [from, to, amount] : tx_transfer_buffer_) {
      auto& src = balances_[from];
      const std::uint64_t moved = std::min(src, amount);
      src -= moved;
      balances_[to] += moved;
    }
    events = std::move(tx_event_buffer_);
    tx_event_buffer_.clear();
    for (Event& ev : events) ev.program = touched_program;
    if (mode != ExecMode::kSilentReplay) {
      for (const Event& ev : events) {
        const auto sub = subscribers_.find(ev.program);
        if (sub != subscribers_.end())
          for (const auto& handler : sub->second) handler(ev);
      }
    }
  } else {
    ++failed_;
    tx_event_buffer_.clear();
    tx_transfer_buffer_.clear();
  }

  if (mode != ExecMode::kSilentReplay && ptx.on_result) ptx.on_result(res);

  // Journal the execution for fork replay and deferred commitment
  // delivery.  Silent replays reconstruct state for entries already in
  // the journal; live and winning-fork executions (re)append theirs.
  if (fork_mode_ && mode != ExecMode::kSilentReplay)
    journal_[slot].push_back(JournalTx{std::move(ptx.tx), std::move(ptx.on_result),
                                       res, std::move(events), sig_ok});
  return res;
}

void Chain::subscribe(const std::string& program, EventHandler handler) {
  subscribers_[program].push_back(std::move(handler));
}

void Chain::subscribe(const std::string& program, EventHandler handler,
                      SubscribeOptions options) {
  // Armed now, or guaranteed to arm at start() — subscriptions are
  // routinely registered before slot production begins.
  const bool armed = fork_mode_ || (!started_ && (cfg_.fork_aware ||
                                                  cfg_.fault.has_reorg_windows()));
  if (!armed || options.level == Commitment::kProcessed) {
    if (armed && options.on_retract)
      processed_retract_.emplace_back(program, std::move(options.on_retract));
    subscribers_[program].push_back(std::move(handler));
    return;
  }
  DeferredSub sub;
  sub.program = program;
  sub.handler = std::move(handler);
  sub.on_retract = std::move(options.on_retract);
  sub.level = options.level;
  sub.confirmations = std::max<std::uint64_t>(1, options.confirmations);
  sub.cursor = deferred_target(sub) + 1;  // no history replay on subscribe
  deferred_subs_.push_back(std::move(sub));
}

Chain::RootedWaitId Chain::when_rooted(std::uint64_t slot, std::function<void()> fn) {
  const bool armed = fork_mode_ || (!started_ && (cfg_.fork_aware ||
                                                  cfg_.fault.has_reorg_windows()));
  if (!armed || slot <= rooted_slot()) {
    // Linear chains root instantly; already-rooted slots fire inline.
    if (fn) fn();
    return 0;
  }
  const RootedWaitId id = next_rooted_wait_++;
  rooted_waits_.emplace(id, RootedWait{slot, std::move(fn)});
  return id;
}

void Chain::cancel_rooted(RootedWaitId id) {
  if (id != 0) rooted_waits_.erase(id);
}

std::uint64_t Chain::deferred_target(const DeferredSub& sub) const {
  if (sub.level == Commitment::kRooted) return rooted_slot();
  return slot_ > sub.confirmations ? slot_ - sub.confirmations : 0;
}

void Chain::deliver_deferred() {
  // Index loop: a handler may add subscriptions, invalidating
  // references into deferred_subs_.
  for (std::size_t i = 0; i < deferred_subs_.size(); ++i) {
    const std::uint64_t target = deferred_target(deferred_subs_[i]);
    if (deferred_subs_[i].cursor > target) continue;
    for (auto it = journal_.lower_bound(deferred_subs_[i].cursor);
         it != journal_.end() && it->first <= target; ++it)
      for (const JournalTx& jt : it->second)
        for (const Event& ev : jt.events)
          if (ev.program == deferred_subs_[i].program) deferred_subs_[i].handler(ev);
    deferred_subs_[i].cursor = target + 1;
  }
}

void Chain::fire_rooted_waits() {
  const std::uint64_t rooted = rooted_slot();
  // Two passes: a fired handler may register or cancel other waits, so
  // collect matured ids first and re-look each up before firing.
  std::vector<RootedWaitId> due;
  for (const auto& [id, wait] : rooted_waits_)
    if (wait.slot <= rooted) due.push_back(id);
  for (const RootedWaitId id : due) {
    const auto it = rooted_waits_.find(id);
    if (it == rooted_waits_.end()) continue;  // cancelled by an earlier handler
    auto fn = std::move(it->second.fn);
    rooted_waits_.erase(it);
    if (fn) fn();
  }
}

void Chain::maybe_trigger_reorg() {
  const double now = sim_.now();
  const double p = cfg_.fault.reorg_probability(now);
  // No draw outside active windows: the reorg stream advances only
  // where the plan says forks can happen.
  if (p <= 0.0 || !reorg_rng_.chance(p)) return;
  const std::uint64_t max_depth = cfg_.fault.reorg_max_depth(now);
  if (max_depth == 0) return;
  std::uint64_t depth = 1 + reorg_rng_.uniform_int(max_depth);
  // Only the unrooted strict past [rooted+1, slot_-1] is reorgable.
  const std::uint64_t rooted = rooted_slot();
  const std::uint64_t reorgable = slot_ - 1 > rooted ? slot_ - 1 - rooted : 0;
  depth = std::min(depth, reorgable);
  if (depth == 0) return;
  perform_reorg(depth);
}

void Chain::perform_reorg(std::uint64_t depth) {
  const std::uint64_t first_retracted = slot_ - depth;  // retract [first_retracted, slot_-1]
  const double now = sim_.now();

  // 1. Retraction callbacks, newest first, before anything rewinds —
  // subscribers observe the pre-rollback chain while being told which
  // of their events are about to be taken back.
  const auto retract_range = [&](std::uint64_t lo, std::uint64_t hi,
                                 const std::string& program,
                                 const EventHandler& on_retract) {
    std::vector<const std::vector<JournalTx>*> slots;
    for (auto it = journal_.lower_bound(lo); it != journal_.end() && it->first <= hi;
         ++it)
      slots.push_back(&it->second);
    for (auto sit = slots.rbegin(); sit != slots.rend(); ++sit)
      for (auto jt = (*sit)->rbegin(); jt != (*sit)->rend(); ++jt)
        for (auto ev = jt->events.rbegin(); ev != jt->events.rend(); ++ev)
          if (ev->program == program) on_retract(*ev);
  };
  for (const auto& [program, on_retract] : processed_retract_)
    retract_range(first_retracted, slot_ - 1, program, on_retract);
  for (DeferredSub& sub : deferred_subs_) {
    if (sub.cursor <= first_retracted) continue;  // never saw the retracted slots
    if (sub.on_retract)
      retract_range(first_retracted, sub.cursor - 1, sub.program, sub.on_retract);
    sub.cursor = first_retracted;
  }

  // 2. New fork epoch.
  ++fork_epoch_;
  ++fault_counters_.reorgs_triggered;
  fault_counters_.slots_rolled_back += depth;

  // 3. Pull the retracted suffix out of the journal.
  std::vector<std::pair<std::uint64_t, std::vector<JournalTx>>> retracted;
  for (auto it = journal_.lower_bound(first_retracted); it != journal_.end();) {
    retracted.emplace_back(it->first, std::move(it->second));
    it = journal_.erase(it);
  }

  // 4. Rewind the ledger and every program to the start() baseline.
  balances_ = baseline_.balances;
  rent_deposits_ = baseline_.rent_deposits;
  payer_stats_ = baseline_.payer_stats;
  executed_ = baseline_.executed;
  failed_ = baseline_.failed;
  fault_counters_.fee_spiked = baseline_.fee_spiked;
  for (auto& [name, prog] : programs_) prog->fork_reset_to_baseline();

  // 5. Silent genesis replay of the surviving prefix: identical inputs
  // against identical state must reproduce the journalled outcome —
  // any divergence means the rollback itself is broken, so fail loud.
  for (const auto& [s, txs] : journal_) {
    for (const JournalTx& jt : txs) {
      PendingTx ptx{jt.tx, {}, UINT64_MAX};
      const TxResult r = execute_tx_at(ptx, jt.result.slot, jt.result.time,
                                       ExecMode::kSilentReplay, jt.sig_ok);
      if (r.success != jt.result.success || r.cu_used != jt.result.cu_used)
        throw std::logic_error("chain: fork replay diverged from journal at slot " +
                               std::to_string(s));
    }
  }

  // 6. Winning fork: per-tx survival draw; survivors re-execute
  // visibly at their original coordinates (their events and result
  // handlers fire again — consumers are stale-guarded), deaths notify
  // their submitters once with reorged_out set.
  for (auto& [s, txs] : retracted) {
    for (JournalTx& jt : txs) {
      const double survival = cfg_.fault.reorg_survival(now, jt.tx.label);
      const bool survives = survival >= 1.0 || reorg_rng_.chance(survival);
      if (survives) {
        ++fault_counters_.txs_replayed;
        PendingTx ptx{std::move(jt.tx), std::move(jt.on_result), UINT64_MAX};
        (void)execute_tx_at(ptx, jt.result.slot, jt.result.time,
                            ExecMode::kVisibleReplay, jt.sig_ok);
      } else {
        ++fault_counters_.txs_reorged_out;
        TxResult res = jt.result;
        res.reorged_out = true;
        if (jt.on_result) jt.on_result(res);
      }
    }
  }
}

const Chain::PayerStats& Chain::payer_stats(const crypto::PublicKey& who) const {
  static const PayerStats kEmpty{};
  const auto it = payer_stats_.find(who);
  return it == payer_stats_.end() ? kEmpty : it->second;
}

}  // namespace bmg::host
