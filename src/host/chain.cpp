#include "host/chain.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/sha256.hpp"

namespace bmg::host {

Hash32 TxContext::sha256(ByteView data) {
  consume_cu(kCuSha256Base + kCuSha256PerByte * data.size());
  return crypto::Sha256::digest(data);
}

void TxContext::emit_event(std::string name, Bytes data) {
  chain_.tx_event_buffer_.push_back(
      Event{slot_, time_, /*program=*/"", std::move(name), std::move(data)});
}

std::uint64_t TxContext::balance(const crypto::PublicKey& who) const {
  return chain_.balance(who);
}

void TxContext::transfer(const crypto::PublicKey& from, const crypto::PublicKey& to,
                         std::uint64_t lamports) {
  std::uint64_t already_spent = 0;
  for (const auto& t : chain_.tx_transfer_buffer_)
    if (std::get<0>(t) == from) already_spent += std::get<2>(t);
  if (chain_.balance(from) < already_spent + lamports)
    throw TxError("transfer: insufficient funds");
  chain_.tx_transfer_buffer_.emplace_back(from, to, lamports);
}

void TxContext::transfer_from_payer(const crypto::PublicKey& to, std::uint64_t lamports) {
  transfer(tx_.payer, to, lamports);
}

Chain::Chain(sim::Simulation& sim, Rng rng, ChainConfig cfg)
    : sim_(sim), rng_(rng), fault_rng_(cfg.fault_seed), cfg_(std::move(cfg)) {}

void Chain::register_program(const std::string& name, std::unique_ptr<Program> program) {
  programs_[name] = std::move(program);
}

Program& Chain::program(const std::string& name) {
  const auto it = programs_.find(name);
  if (it == programs_.end()) throw std::out_of_range("no such program: " + name);
  return *it->second;
}

void Chain::airdrop(const crypto::PublicKey& who, std::uint64_t lamports) {
  balances_[who] += lamports;
}

std::uint64_t Chain::balance(const crypto::PublicKey& who) const {
  const auto it = balances_.find(who);
  return it == balances_.end() ? 0 : it->second;
}

void Chain::charge_rent(const crypto::PublicKey& payer, std::size_t bytes) {
  const std::uint64_t deposit = kRentLamportsPerByte * bytes;
  auto& bal = balances_[payer];
  if (bal < deposit) throw std::runtime_error("charge_rent: insufficient funds");
  bal -= deposit;
  rent_deposits_[payer] += deposit;
}

std::uint64_t Chain::rent_deposits(const crypto::PublicKey& payer) const {
  const auto it = rent_deposits_.find(payer);
  return it == rent_deposits_.end() ? 0 : it->second;
}

double Chain::time() const noexcept { return sim_.now(); }

void Chain::start() {
  if (started_) return;
  started_ = true;
  sim_.after(cfg_.slot_seconds, [this] { on_slot(); });
}

double Chain::inclusion_probability(const FeePolicy& fee) const {
  switch (fee.kind) {
    case FeePolicy::Kind::kPriority:
      return cfg_.p_include_priority;
    case FeePolicy::Kind::kBundle:
      return cfg_.p_include_bundle;
    case FeePolicy::Kind::kBase:
    default:
      return cfg_.p_include_base;
  }
}

void Chain::submit(Transaction tx, ResultHandler on_result) {
  if (tx.wire_size() > cfg_.max_tx_size) {
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction too large (" + std::to_string(tx.wire_size()) + " > " +
                std::to_string(cfg_.max_tx_size) + " bytes)";
    res.label = tx.label;
    if (on_result)
      sim_.after(0, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  // First slot at which the transaction is visible to block producers.
  const double visible_at = sim_.now() + cfg_.mempool_latency_s;
  const auto first_slot =
      static_cast<std::uint64_t>(std::ceil(visible_at / cfg_.slot_seconds));

  if (cfg_.fault.has_chain_faults()) {
    submit_with_faults(std::move(tx), std::move(on_result), first_slot);
    return;
  }

  // Geometric inclusion delay driven by the fee policy.
  const double p = inclusion_probability(tx.fee);
  std::uint64_t extra = 0;
  while (!rng_.chance(p) && extra <= kTxExpirySlots) ++extra;

  if (extra > kTxExpirySlots) {
    ++dropped_;
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction expired (blockhash too old)";
    res.label = tx.label;
    const double expiry_time =
        static_cast<double>(first_slot + kTxExpirySlots) * cfg_.slot_seconds;
    if (on_result)
      sim_.at(expiry_time, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  const std::uint64_t target = std::max(first_slot + extra, slot_ + 1);
  pending_[target].push_back(PendingTx{std::move(tx), std::move(on_result)});
}

void Chain::submit_with_faults(Transaction tx, ResultHandler on_result,
                               std::uint64_t first_slot) {
  const double now = sim_.now();

  // Blackhole: the tx vanishes between the submitter and the cluster;
  // no result handler ever fires.  This is what forces real timeout
  // handling in the relayer pipeline.
  const double p_bh = cfg_.fault.blackhole_probability(now, tx.label);
  if (p_bh > 0 && fault_rng_.chance(p_bh)) {
    ++fault_counters_.blackholed;
    return;
  }

  // Per-slot inclusion scan: each candidate slot applies the congestion
  // multiplier active at that slot's wall time, and outage slots
  // include nothing at all.
  const double p0 = inclusion_probability(tx.fee);
  const std::uint64_t expiry_slot = first_slot + kTxExpirySlots;
  std::uint64_t chosen = 0;
  bool included = false;
  bool congested = false;
  bool waited_out_outage = false;
  for (std::uint64_t s = std::max(first_slot, slot_ + 1); s <= expiry_slot; ++s) {
    const double t = static_cast<double>(s) * cfg_.slot_seconds;
    if (cfg_.fault.in_outage(t)) {
      waited_out_outage = true;
      continue;
    }
    const double m = cfg_.fault.congestion_multiplier(t, tx.label);
    const double p = std::min(p0 * m, 1.0);
    if (p <= 0) {
      congested = true;
      continue;
    }
    if (fault_rng_.chance(p)) {
      chosen = s;
      included = true;
      break;
    }
    if (m < 1.0) congested = true;
  }
  if (congested) ++fault_counters_.congestion_delayed;
  if (waited_out_outage) ++fault_counters_.outage_deferred;

  if (!included) {
    ++dropped_;
    if (waited_out_outage) ++fault_counters_.outage_expired;
    TxResult res;
    res.executed = false;
    res.success = false;
    res.error = "transaction expired (blockhash too old)";
    res.label = tx.label;
    const double expiry_time = static_cast<double>(expiry_slot) * cfg_.slot_seconds;
    if (on_result)
      sim_.at(expiry_time, [on_result = std::move(on_result), res] { on_result(res); });
    return;
  }

  // Duplicate fault: a ghost replay lands one slot later with no
  // handler — the program must tolerate the second execution.
  const double p_dup = cfg_.fault.duplicate_probability(now, tx.label);
  if (p_dup > 0 && fault_rng_.chance(p_dup)) {
    ++fault_counters_.duplicated;
    pending_[chosen + 1].push_back(PendingTx{tx, {}, expiry_slot});
  }

  pending_[chosen].push_back(PendingTx{std::move(tx), std::move(on_result), expiry_slot});
}

void Chain::on_slot() {
  ++slot_;

  if (cfg_.fault.has_chain_faults() && cfg_.fault.in_outage(sim_.now())) {
    // Outage slot: produced, but includes nothing.  Defer everything to
    // the next slot, expiring transactions whose blockhash aged out.
    const auto it = pending_.find(slot_);
    if (it != pending_.end()) {
      std::vector<PendingTx> batch = std::move(it->second);
      pending_.erase(it);
      for (auto& ptx : batch) {
        if (slot_ >= ptx.expiry_slot) {
          ++fault_counters_.outage_expired;
          ++dropped_;
          if (ptx.on_result) {
            TxResult res;
            res.executed = false;
            res.success = false;
            res.error = "transaction expired (blockhash too old)";
            res.label = ptx.tx.label;
            sim_.after(0, [on_result = std::move(ptx.on_result), res] { on_result(res); });
          }
          continue;
        }
        ++fault_counters_.outage_deferred;
        pending_[slot_ + 1].push_back(std::move(ptx));
      }
    }
    sim_.after(cfg_.slot_seconds, [this] { on_slot(); });
    return;
  }

  const auto it = pending_.find(slot_);
  if (it != pending_.end()) {
    std::vector<PendingTx> batch = std::move(it->second);
    pending_.erase(it);

    // Block producer ordering: bundles first, then priority fee by
    // price, then base-fee FIFO.
    std::stable_sort(batch.begin(), batch.end(), [](const PendingTx& a, const PendingTx& b) {
      auto rank = [](const FeePolicy& f) {
        switch (f.kind) {
          case FeePolicy::Kind::kBundle:
            return 0;
          case FeePolicy::Kind::kPriority:
            return 1;
          default:
            return 2;
        }
      };
      const int ra = rank(a.tx.fee), rb = rank(b.tx.fee);
      if (ra != rb) return ra < rb;
      return a.tx.fee.cu_price_microlamports > b.tx.fee.cu_price_microlamports;
    });

    std::uint64_t block_cu = 0;
    for (auto& ptx : batch) {
      if (block_cu >= cfg_.block_compute_units) {
        // Block full: spill to the next slot.
        pending_[slot_ + 1].push_back(std::move(ptx));
        continue;
      }
      execute_tx(ptx);
      block_cu += cfg_.max_compute_units;  // conservative per-tx reservation
    }
  }

  sim_.after(cfg_.slot_seconds, [this] { on_slot(); });
}

FeeBreakdown compute_fee(const Transaction& tx, std::uint64_t cu_used) {
  FeeBreakdown fee;
  fee.base_lamports =
      kLamportsPerSignature * (1 + static_cast<std::uint64_t>(tx.sig_verifies.size()));
  if (tx.fee.kind == FeePolicy::Kind::kPriority)
    fee.priority_lamports = tx.fee.cu_price_microlamports * cu_used / 1'000'000;
  if (tx.fee.kind == FeePolicy::Kind::kBundle) fee.tip_lamports = tx.fee.tip_lamports;
  return fee;
}

void Chain::execute_tx(PendingTx& ptx) {
  const Transaction& tx = ptx.tx;
  TxResult res;
  res.executed = true;
  res.slot = slot_;
  res.time = sim_.now();
  res.label = tx.label;

  tx_event_buffer_.clear();
  tx_transfer_buffer_.clear();

  TxContext ctx(*this, tx, slot_, sim_.now(), cfg_.max_compute_units);
  std::string touched_program;
  try {
    // Ed25519 pre-compile runs before the programs.  All signatures of
    // a transaction are checked as one batch (real runtimes verify the
    // whole packet's signatures up front, too).
    ctx.consume_cu(kCuEd25519PerSig * tx.sig_verifies.size());
    if (!tx.sig_verifies.empty()) {
      std::vector<crypto::ed25519::VerifyItem> items;
      items.reserve(tx.sig_verifies.size());
      for (const auto& sv : tx.sig_verifies)
        items.push_back({sv.pubkey.raw(), sv.message.view(), sv.signature.raw()});
      for (const bool good : crypto::ed25519::verify_batch(items))
        if (!good) throw TxError("ed25519 pre-compile: invalid signature");
    }
    for (const auto& ins : tx.instructions) {
      ctx.consume_cu(kCuInstructionBase);
      Program& prog = program(ins.program);
      touched_program = ins.program;
      prog.execute(ctx, ins.data);
      if (prog.account_bytes() > cfg_.max_account_size) throw AccountSizeExceeded();
    }
    res.success = true;
  } catch (const TxError& e) {
    res.success = false;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.success = false;
    res.error = std::string("program panic: ") + e.what();
  }

  res.cu_used = ctx.cu_used();
  res.fee = compute_fee(tx, ctx.cu_used());

  if (cfg_.fault.has_chain_faults()) {
    // Fee spike: the market components (priority fee, bundle tip) cost
    // a multiple of their quoted price; the protocol base fee is fixed.
    const double m = cfg_.fault.fee_multiplier(sim_.now());
    if (m != 1.0 && (res.fee.priority_lamports > 0 || res.fee.tip_lamports > 0)) {
      res.fee.priority_lamports =
          static_cast<std::uint64_t>(static_cast<double>(res.fee.priority_lamports) * m);
      res.fee.tip_lamports =
          static_cast<std::uint64_t>(static_cast<double>(res.fee.tip_lamports) * m);
      ++fault_counters_.fee_spiked;
    }
  }

  // Charge fees (saturating — a payer going broke is an operator
  // problem, not a simulator crash).
  auto& bal = balances_[tx.payer];
  bal -= std::min(bal, res.fee.total());
  auto& stats = payer_stats_[tx.payer];
  stats.fees_lamports += res.fee.total();
  stats.tx_count += 1;
  stats.sig_count += 1 + tx.sig_verifies.size();

  if (res.success) {
    ++executed_;
    // Apply buffered transfers, then flush events to subscribers.
    for (const auto& [from, to, amount] : tx_transfer_buffer_) {
      auto& src = balances_[from];
      const std::uint64_t moved = std::min(src, amount);
      src -= moved;
      balances_[to] += moved;
    }
    std::vector<Event> events = std::move(tx_event_buffer_);
    tx_event_buffer_.clear();
    for (Event& ev : events) {
      ev.program = touched_program;
      const auto sub = subscribers_.find(ev.program);
      if (sub != subscribers_.end())
        for (const auto& handler : sub->second) handler(ev);
    }
  } else {
    ++failed_;
    tx_event_buffer_.clear();
    tx_transfer_buffer_.clear();
  }

  if (ptx.on_result) ptx.on_result(res);
}

void Chain::subscribe(const std::string& program, EventHandler handler) {
  subscribers_[program].push_back(std::move(handler));
}

const Chain::PayerStats& Chain::payer_stats(const crypto::PublicKey& who) const {
  static const PayerStats kEmpty{};
  const auto it = payer_stats_.find(who);
  return it == payer_stats_.end() ? kEmpty : it->second;
}

}  // namespace bmg::host
