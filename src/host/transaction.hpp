// Host-chain transactions and fee policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "host/constants.hpp"

namespace bmg::host {

/// How the submitter pays for inclusion (paper §V-A / §VI-B): the
/// default base fee, a compute-unit priority fee, or a Jito-style
/// block-bundle tip.
struct FeePolicy {
  enum class Kind { kBase, kPriority, kBundle };
  Kind kind = Kind::kBase;
  /// kPriority: price per compute unit, in micro-lamports.
  std::uint64_t cu_price_microlamports = 0;
  /// kBundle: flat tip to the block producer, in lamports.
  std::uint64_t tip_lamports = 0;

  [[nodiscard]] static FeePolicy base() { return {}; }
  [[nodiscard]] static FeePolicy priority(std::uint64_t microlamports_per_cu) {
    return {Kind::kPriority, microlamports_per_cu, 0};
  }
  [[nodiscard]] static FeePolicy bundle(std::uint64_t tip) {
    return {Kind::kBundle, 0, tip};
  }
};

/// One Ed25519 pre-compile verification request carried by a
/// transaction.  Solana contracts cannot verify signatures in-contract
/// (compute budget, §IV); instead the runtime's native Ed25519 program
/// verifies these and the contract introspects the results.
struct SigVerify {
  crypto::PublicKey pubkey;
  /// The signed message.  Every signature in this system covers a
  /// 32-byte digest, so the message is stored flat — building a
  /// verification request never touches the heap.
  Hash32 message;
  crypto::Signature signature;

  [[nodiscard]] std::size_t wire_size() const {
    return kSigVerifyBytesOverhead + message.bytes.size();
  }
};

struct Instruction {
  std::string program;  ///< registered program name
  Bytes data;           ///< opaque instruction payload
};

struct Transaction {
  crypto::PublicKey payer;
  std::vector<Instruction> instructions;
  std::vector<SigVerify> sig_verifies;
  FeePolicy fee;
  /// Optional human-readable tag for tracing/metrics.
  std::string label;

  /// Serialized size; must not exceed kMaxTransactionSize.
  [[nodiscard]] std::size_t wire_size() const {
    std::size_t n = kTxEnvelopeBytes;
    for (const auto& ins : instructions) n += 8 + ins.data.size();
    for (const auto& sv : sig_verifies) n += sv.wire_size();
    return n;
  }
};

/// Fee actually charged for an executed transaction.
struct FeeBreakdown {
  std::uint64_t base_lamports = 0;      ///< per-signature base fee
  std::uint64_t priority_lamports = 0;  ///< compute-unit priority fee
  std::uint64_t tip_lamports = 0;       ///< bundle tip

  [[nodiscard]] std::uint64_t total() const {
    return base_lamports + priority_lamports + tip_lamports;
  }
  [[nodiscard]] double usd() const { return lamports_to_usd(total()); }
};

[[nodiscard]] FeeBreakdown compute_fee(const Transaction& tx, std::uint64_t cu_used);

/// Outcome of a transaction delivered back to the submitter.
struct TxResult {
  bool executed = false;  ///< false => dropped (expired in mempool)
  bool success = false;
  std::string error;
  std::uint64_t slot = 0;
  double time = 0;  ///< simulation time of execution
  std::uint64_t cu_used = 0;
  FeeBreakdown fee;
  std::string label;
  /// The tx had executed on a fork that was retracted and did NOT
  /// survive onto the winning fork: its effects are gone and it must
  /// be resubmitted.  `slot`/`time`/`fee` describe the original
  /// (now-retracted) execution.
  bool reorged_out = false;
};

}  // namespace bmg::host
