// Host-chain (Solana-like) runtime constants.
//
// These are the documented Solana limits the paper's §IV names as the
// constraints the Guest Contract had to engineer around, plus the fee
// constants used throughout the paper's evaluation (SOL = 200 USD,
// 0.1 cents per transaction and per signature).
#pragma once

#include <cstdint>

namespace bmg::host {

/// Maximum serialized transaction size in bytes (§IV).
inline constexpr std::size_t kMaxTransactionSize = 1232;

/// Maximum compute units a transaction may consume (§IV).
inline constexpr std::uint64_t kMaxComputeUnits = 1'400'000;

/// Compute units available per slot (block) for all transactions.
inline constexpr std::uint64_t kBlockComputeUnits = 48'000'000;

/// Largest possible account, 10 MiB (§V-D).
inline constexpr std::size_t kMaxAccountSize = 10ull * 1024 * 1024;

/// Slot (block) time in seconds — Solana's sub-second cadence.
inline constexpr double kSlotSeconds = 0.4;

inline constexpr std::uint64_t kLamportsPerSol = 1'000'000'000ull;

/// Evaluation's price assumption: 1 SOL = 200 USD (§V).
inline constexpr double kUsdPerSol = 200.0;

/// Base fee: 5000 lamports per signature = 0.1 cents at 200 USD/SOL,
/// matching §V-B ("0.1 cents per transaction and 0.1 per signature").
inline constexpr std::uint64_t kLamportsPerSignature = 5000;

/// Rent-exempt deposit per byte of account data.  2 years of Solana's
/// 3480 lamports/byte-year; 10 MiB => ~73 SOL ~= 14.6 k$ (§V-D).
inline constexpr std::uint64_t kRentLamportsPerByte = 6960;

/// Compute-unit costs of metered syscalls.
inline constexpr std::uint64_t kCuSha256Base = 85;
inline constexpr std::uint64_t kCuSha256PerByte = 1;
/// Per-signature cost charged for Ed25519 pre-compile verification.
inline constexpr std::uint64_t kCuEd25519PerSig = 30'000;
/// Flat per-instruction dispatch cost.
inline constexpr std::uint64_t kCuInstructionBase = 1'000;

/// Serialized bytes per Ed25519 pre-compile verification entry:
/// 64-byte signature + 32-byte public key + offsets/header.
inline constexpr std::size_t kSigVerifyBytesOverhead = 112;

/// Fixed transaction envelope overhead (signature, header, blockhash,
/// account table) before instruction payloads.
inline constexpr std::size_t kTxEnvelopeBytes = 200;

/// Transactions expire when not included within this many slots
/// (Solana's recent-blockhash lifetime).
inline constexpr std::uint64_t kTxExpirySlots = 151;

[[nodiscard]] inline double lamports_to_usd(std::uint64_t lamports) {
  return static_cast<double>(lamports) / static_cast<double>(kLamportsPerSol) * kUsdPerSol;
}

[[nodiscard]] inline std::uint64_t usd_to_lamports(double usd) {
  return static_cast<std::uint64_t>(usd / kUsdPerSol * static_cast<double>(kLamportsPerSol));
}

}  // namespace bmg::host
