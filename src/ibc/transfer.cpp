#include "ibc/transfer.hpp"

#include "common/codec.hpp"

namespace bmg::ibc {

namespace {
/// "port/channel/" voucher prefix.
std::string prefix_of(const PortId& port, const ChannelId& channel) {
  return port + "/" + channel + "/";
}

bool has_prefix(const std::string& denom, const std::string& prefix) {
  return denom.size() > prefix.size() && denom.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

Bytes TokenPacketData::encode() const {
  Encoder e(4 + denom.size() + 8 + 4 + sender.size() + 4 + receiver.size());
  e.str(denom).u64(amount).str(sender).str(receiver);
  return e.take();
}

TokenPacketData TokenPacketData::decode(ByteView wire) {
  Decoder d(wire);
  TokenPacketData t;
  t.denom = d.str();
  t.amount = d.u64();
  t.sender = d.str();
  t.receiver = d.str();
  d.expect_done();
  return t;
}

TokenTransferApp::TokenTransferApp(IbcModule& module, Bank& bank, PortId port)
    : module_(module), bank_(bank), port_(std::move(port)) {
  module_.bind_port(port_, this);
}

Bank::Account TokenTransferApp::escrow_account(const ChannelId& channel) {
  return "escrow:" + channel;
}

Packet TokenTransferApp::send_transfer(const ChannelId& channel,
                                       const std::string& denom, std::uint64_t amount,
                                       const std::string& sender,
                                       const std::string& receiver,
                                       Height timeout_height,
                                       Timestamp timeout_timestamp) {
  if (amount == 0) throw IbcError("send_transfer: zero amount");

  if (has_prefix(denom, prefix_of(port_, channel))) {
    // Returning a voucher to its source chain: burn here, the source
    // releases its escrow on delivery.
    bank_.burn(sender, denom, amount);
  } else {
    // Native token leaving this chain: lock it in the channel escrow.
    bank_.transfer(sender, escrow_account(channel), denom, amount);
  }

  TokenPacketData data{denom, amount, sender, receiver};
  return module_.send_packet(port_, channel, data.encode(), timeout_height,
                             timeout_timestamp);
}

Acknowledgement TokenTransferApp::on_recv_packet(const Packet& packet) {
  const TokenPacketData data = TokenPacketData::decode(packet.data);
  if (data.amount == 0) return Acknowledgement::fail("zero amount");

  const std::string source_prefix =
      prefix_of(packet.source_port, packet.source_channel);
  if (has_prefix(data.denom, source_prefix)) {
    // Token coming home: strip the voucher prefix and release escrow.
    const std::string base_denom = data.denom.substr(source_prefix.size());
    bank_.transfer(escrow_account(packet.dest_channel), data.receiver, base_denom,
                   data.amount);
  } else {
    // Foreign token: mint a voucher carrying our hop in the trace.
    const std::string voucher =
        prefix_of(packet.dest_port, packet.dest_channel) + data.denom;
    bank_.mint(data.receiver, voucher, data.amount);
  }
  return Acknowledgement::ok();
}

void TokenTransferApp::refund(const Packet& packet) {
  const TokenPacketData data = TokenPacketData::decode(packet.data);
  if (has_prefix(data.denom, prefix_of(port_, packet.source_channel))) {
    // We burned a voucher on send; mint it back.
    bank_.mint(data.sender, data.denom, data.amount);
  } else {
    // We escrowed a native token; release it back.
    bank_.transfer(escrow_account(packet.source_channel), data.sender, data.denom,
                   data.amount);
  }
}

void TokenTransferApp::on_acknowledge(const Packet& packet, const Acknowledgement& ack) {
  if (!ack.success) refund(packet);
}

void TokenTransferApp::on_timeout(const Packet& packet) { refund(packet); }

}  // namespace bmg::ibc
