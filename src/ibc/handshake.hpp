// Connection (ICS-3) and channel (ICS-4) ends and their commitments.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg::ibc {

enum class ConnectionState : std::uint8_t { kInit = 1, kTryOpen = 2, kOpen = 3 };

struct ConnectionEnd {
  ConnectionState state = ConnectionState::kInit;
  /// Light client (of the counterparty chain) this connection runs over.
  ClientId client_id;
  /// Counterparty's connection identifier (empty until learned).
  ConnectionId counterparty_connection;
  /// Counterparty's client identifier (for self-client validation).
  ClientId counterparty_client_id;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ConnectionEnd decode(ByteView wire);
  /// Value stored in the provable store at connection_key().
  [[nodiscard]] Hash32 commitment() const;

  friend bool operator==(const ConnectionEnd&, const ConnectionEnd&) = default;
};

enum class ChannelState : std::uint8_t {
  kInit = 1,
  kTryOpen = 2,
  kOpen = 3,
  kClosed = 4,
};

/// ICS-4 channel ordering.  Unordered channels deliver packets in any
/// order and guard replays with receipts; ordered channels enforce
/// strictly sequential delivery and close on timeout.
enum class ChannelOrder : std::uint8_t {
  kUnordered = 1,
  kOrdered = 2,
};

struct ChannelEnd {
  ChannelState state = ChannelState::kInit;
  ChannelOrder order = ChannelOrder::kUnordered;
  ConnectionId connection;
  PortId counterparty_port;
  ChannelId counterparty_channel;  ///< empty until learned

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ChannelEnd decode(ByteView wire);
  [[nodiscard]] Hash32 commitment() const;

  friend bool operator==(const ChannelEnd&, const ChannelEnd&) = default;
};

}  // namespace bmg::ibc
