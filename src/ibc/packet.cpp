#include "ibc/packet.hpp"

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

Bytes Packet::encode() const {
  Encoder e(8 + (4 + source_port.size()) + (4 + source_channel.size()) +
            (4 + dest_port.size()) + (4 + dest_channel.size()) + (4 + data.size()) +
            8 + 8);
  e.u64(sequence)
      .str(source_port)
      .str(source_channel)
      .str(dest_port)
      .str(dest_channel)
      .bytes(data)
      .u64(timeout_height)
      .u64(static_cast<std::uint64_t>(timeout_timestamp * 1e6 + 0.5));
  return e.take();
}

Packet Packet::decode(ByteView wire) {
  Decoder d(wire);
  Packet p;
  p.sequence = d.u64();
  p.source_port = d.str();
  p.source_channel = d.str();
  p.dest_port = d.str();
  p.dest_channel = d.str();
  p.data = d.bytes();
  p.timeout_height = d.u64();
  p.timeout_timestamp = static_cast<double>(d.u64()) / 1e6;
  d.expect_done();
  return p;
}

Hash32 Packet::commitment() const {
  const Hash32 data_hash = crypto::Sha256::digest(data);
  Encoder e(8 + 8 + 32);
  e.u64(timeout_height)
      .u64(static_cast<std::uint64_t>(timeout_timestamp * 1e6 + 0.5))
      .hash(data_hash);
  return crypto::Sha256::digest(e.out());
}

Bytes Acknowledgement::encode() const {
  Encoder e;
  e.boolean(success);
  if (success) {
    e.bytes(result);
  } else {
    e.str(error);
  }
  return e.take();
}

Acknowledgement Acknowledgement::decode(ByteView wire) {
  Decoder d(wire);
  Acknowledgement a;
  a.success = d.boolean();
  if (a.success) {
    a.result = d.bytes();
  } else {
    a.error = d.str();
  }
  d.expect_done();
  return a;
}

Hash32 Acknowledgement::commitment() const {
  return crypto::Sha256::digest(encode());
}

Acknowledgement Acknowledgement::ok(Bytes result) {
  Acknowledgement a;
  a.success = true;
  a.result = std::move(result);
  return a;
}

Acknowledgement Acknowledgement::fail(std::string reason) {
  Acknowledgement a;
  a.success = false;
  a.error = std::move(reason);
  return a;
}

}  // namespace bmg::ibc
