#include "ibc/packet.hpp"

#include <array>
#include <span>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

namespace {
[[nodiscard]] std::uint64_t timestamp_micros(Timestamp t) noexcept {
  return static_cast<std::uint64_t>(t * 1e6 + 0.5);
}
}  // namespace

std::size_t Packet::wire_size() const noexcept {
  return 8 + (4 + source_port.size()) + (4 + source_channel.size()) +
         (4 + dest_port.size()) + (4 + dest_channel.size()) + (4 + data.size()) +
         8 + 8;
}

void Packet::encode_into(Encoder& e) const {
  e.reserve(wire_size());
  e.u64(sequence)
      .str(source_port)
      .str(source_channel)
      .str(dest_port)
      .str(dest_channel)
      .bytes(data)
      .u64(timeout_height)
      .u64(timestamp_micros(timeout_timestamp));
}

Bytes Packet::encode() const {
  Encoder e(wire_size());
  encode_into(e);
  return e.take();
}

Packet Packet::decode(ByteView wire) {
  Decoder d(wire);
  Packet p;
  p.sequence = d.u64();
  p.source_port = d.str();
  p.source_channel = d.str();
  p.dest_port = d.str();
  p.dest_channel = d.str();
  p.data = d.bytes();
  p.timeout_height = d.u64();
  p.timeout_timestamp = static_cast<double>(d.u64()) / 1e6;
  d.expect_done();
  return p;
}

Hash32 Packet::compute_commitment() const {
  const Hash32 data_hash = crypto::Sha256::digest(data);
  std::array<std::uint8_t, 8 + 8 + 32> preimage;
  Encoder e{std::span<std::uint8_t>(preimage)};
  e.u64(timeout_height).u64(timestamp_micros(timeout_timestamp)).hash(data_hash);
  return crypto::Sha256::digest(e.out());
}

const Hash32& Packet::commitment() const {
  if (!commitment_) commitment_ = compute_commitment();
  return *commitment_;
}

std::size_t Acknowledgement::wire_size() const noexcept {
  return 1 + 4 + (success ? result.size() : error.size());
}

void Acknowledgement::encode_into(Encoder& e) const {
  e.reserve(wire_size());
  e.boolean(success);
  if (success) {
    e.bytes(result);
  } else {
    e.str(error);
  }
}

Bytes Acknowledgement::encode() const {
  Encoder e(wire_size());
  encode_into(e);
  return e.take();
}

Acknowledgement Acknowledgement::decode(ByteView wire) {
  Decoder d(wire);
  Acknowledgement a;
  a.success = d.boolean();
  if (a.success) {
    a.result = d.bytes();
  } else {
    a.error = d.str();
  }
  d.expect_done();
  return a;
}

Hash32 Acknowledgement::commitment() const {
  // Stack-encoded for the common small ack; spills to heap only for
  // outsized app payloads.
  std::array<std::uint8_t, 256> stack;
  Encoder e{std::span<std::uint8_t>(stack)};
  encode_into(e);
  return crypto::Sha256::digest(e.out());
}

Acknowledgement Acknowledgement::ok(Bytes result) {
  Acknowledgement a;
  a.success = true;
  a.result = std::move(result);
  return a;
}

Acknowledgement Acknowledgement::fail(std::string reason) {
  Acknowledgement a;
  a.success = false;
  a.error = std::move(reason);
  return a;
}

}  // namespace bmg::ibc
