#include "ibc/views.hpp"

#include <array>
#include <cstring>
#include <span>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

namespace {
[[nodiscard]] std::uint64_t read_u64_be(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}
}  // namespace

PacketView PacketView::parse(ByteView wire) {
  Decoder d(wire);
  PacketView v;
  v.sequence = d.u64();
  v.source_port = d.str_view();
  v.source_channel = d.str_view();
  v.dest_port = d.str_view();
  v.dest_channel = d.str_view();
  v.data = d.bytes_view();
  v.timeout_height = d.u64();
  v.timeout_micros = d.u64();
  d.expect_done();
  v.wire = wire;
  return v;
}

Hash32 PacketView::commitment() const {
  const Hash32 data_hash = crypto::Sha256::digest(data);
  std::array<std::uint8_t, 8 + 8 + 32> preimage;
  Encoder e{std::span<std::uint8_t>(preimage)};
  e.u64(timeout_height).u64(timeout_micros).hash(data_hash);
  return crypto::Sha256::digest(e.out());
}

Packet PacketView::to_owned() const {
  Packet p;
  p.sequence = sequence;
  p.source_port = PortId(source_port);
  p.source_channel = ChannelId(source_channel);
  p.dest_port = PortId(dest_port);
  p.dest_channel = ChannelId(dest_channel);
  p.data = Bytes(data.begin(), data.end());
  p.timeout_height = timeout_height;
  p.timeout_timestamp = timeout_timestamp();
  return p;
}

AckView AckView::parse(ByteView wire) {
  Decoder d(wire);
  AckView v;
  v.success = d.boolean();
  if (v.success) {
    v.result = d.bytes_view();
  } else {
    v.error = d.str_view();
  }
  d.expect_done();
  v.wire = wire;
  return v;
}

Hash32 AckView::commitment() const { return crypto::Sha256::digest(wire); }

Acknowledgement AckView::to_owned() const {
  Acknowledgement a;
  a.success = success;
  a.result = Bytes(result.begin(), result.end());
  a.error = std::string(error);
  return a;
}

QuorumHeaderView QuorumHeaderView::parse(ByteView wire) {
  Decoder d(wire);
  QuorumHeaderView v;
  v.chain_id = d.str_view();
  v.height = d.u64();
  v.timestamp_micros = d.u64();
  v.state_root = d.hash();
  v.validator_set_hash = d.hash();
  v.extra = d.bytes_view();
  d.expect_done();
  v.wire = wire;
  return v;
}

Hash32 QuorumHeaderView::signing_digest() const {
  return crypto::Sha256::digest(wire);
}

QuorumHeader QuorumHeaderView::to_owned() const {
  QuorumHeader h;
  h.chain_id = std::string(chain_id);
  h.height = height;
  h.timestamp = timestamp();
  h.state_root = state_root;
  h.validator_set_hash = validator_set_hash;
  h.extra = Bytes(extra.begin(), extra.end());
  return h;
}

ValidatorSetView ValidatorSetView::parse(ByteView wire) {
  Decoder d(wire);
  ValidatorSetView v;
  v.count = d.u32();
  // Same plausibility bound as the owning decode: the count must be
  // covered by bytes actually present (40 per entry).
  if (v.count > d.remaining() / 40)
    throw CodecError("validator set: implausible count");
  v.records = d.view(std::size_t{40} * v.count);
  d.expect_done();
  v.wire = wire;
  return v;
}

std::uint64_t ValidatorSetView::stake_at(std::uint32_t i) const noexcept {
  return read_u64_be(records.data() + std::size_t{40} * i + 32);
}

Hash32 ValidatorSetView::hash() const { return crypto::Sha256::digest(wire); }

ValidatorSet ValidatorSetView::to_owned() const {
  std::vector<ValidatorInfo> vals;
  vals.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ValidatorInfo v;
    crypto::ed25519::PublicKeyBytes pk;
    const ByteView key = key_at(i);
    std::memcpy(pk.data(), key.data(), pk.size());
    v.key = crypto::PublicKey(pk);
    v.stake = stake_at(i);
    vals.push_back(v);
  }
  return ValidatorSet(std::move(vals));
}

SignedQuorumHeaderView SignedQuorumHeaderView::parse(ByteView wire) {
  Decoder d(wire);
  SignedQuorumHeaderView v;
  v.header = QuorumHeaderView::parse(d.bytes_view());
  v.signature_count = d.u32();
  // Bound before the multiply, mirroring the validator-set guard: a
  // hostile count must fail as truncation, not wrap the subspan math.
  if (v.signature_count > d.remaining() / 96)
    throw CodecError("decoder: truncated input");
  v.signatures = d.view(std::size_t{96} * v.signature_count);
  if (d.boolean()) v.next_validators = ValidatorSetView::parse(d.bytes_view());
  d.expect_done();
  v.wire = wire;
  return v;
}

crypto::PublicKey SignedQuorumHeaderView::signer_at(std::uint32_t i) const noexcept {
  crypto::ed25519::PublicKeyBytes pk;
  std::memcpy(pk.data(), signatures.data() + std::size_t{96} * i, pk.size());
  return crypto::PublicKey(pk);
}

SignedQuorumHeader SignedQuorumHeaderView::to_owned() const {
  SignedQuorumHeader sh;
  sh.header = header.to_owned();
  sh.signatures.reserve(signature_count);
  for (std::uint32_t i = 0; i < signature_count; ++i) {
    crypto::ed25519::SignatureBytes sig;
    const ByteView s = signature_at(i);
    std::memcpy(sig.data(), s.data(), sig.size());
    sh.signatures.emplace_back(signer_at(i), crypto::Signature(sig));
  }
  if (next_validators) sh.next_validators = next_validators->to_owned();
  return sh;
}

}  // namespace bmg::ibc
