// Commitment keys and values stored in a chain's provable store.
//
// Keys are fixed-width and *monotonic in the sequence number* within
// each (port, channel, kind) subspace:
//
//   [8-byte subspace tag = sha256(domain)[0..8]] [1-byte kind] [8-byte seq]
//
// Fixed width makes the key set prefix-free (a trie requirement), and
// monotonicity makes sealing safe: as long as the newest entry of a
// subspace stays unsealed, inserting the next sequence number can
// never route into a sealed subtree (interval property — see
// DESIGN.md and trie tests).
//
// Keys are built per store access on the hot path, so they are a plain
// 17-byte stack value (`CommitmentKey`, convertible to ByteView) and
// the subspace tag — the one SHA-256 in the construction — is memoised
// per (port, channel) in a thread-local cache.  Building a key for a
// warm subspace touches no heap and hashes nothing.
#pragma once

#include <array>

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg::ibc {

enum class KeyKind : std::uint8_t {
  kPacketCommitment = 0x01,  ///< sender side: packet sent
  kPacketReceipt = 0x02,     ///< receiver side: packet delivered
  kPacketAck = 0x03,         ///< receiver side: acknowledgement written
  kNextSequenceRecv = 0x04,  ///< ordered channels: next expected sequence (seq = 0)
  kChannel = 0x10,           ///< channel end commitment (seq = 0)
  kConnection = 0x11,        ///< connection end commitment (seq = 0)
  kClientState = 0x12,       ///< light client state commitment (seq = 0)
};

/// A fixed-width store key as a stack value.  Converts implicitly to
/// ByteView, which every store/proof interface takes.
class CommitmentKey {
 public:
  static constexpr std::size_t kSize = 8 + 1 + 8;

  CommitmentKey() = default;
  CommitmentKey(const Hash32& domain_tag, KeyKind kind, std::uint64_t sequence);

  [[nodiscard]] const std::uint8_t* data() const noexcept { return buf_.data(); }
  [[nodiscard]] static constexpr std::size_t size() noexcept { return kSize; }
  [[nodiscard]] ByteView view() const noexcept { return {buf_.data(), kSize}; }
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate — keys are views.
  operator ByteView() const noexcept { return view(); }
  [[nodiscard]] Bytes to_bytes() const { return Bytes(buf_.begin(), buf_.end()); }

  friend bool operator==(const CommitmentKey&, const CommitmentKey&) = default;

 private:
  std::array<std::uint8_t, kSize> buf_{};
};

/// Key for per-packet entries.
[[nodiscard]] CommitmentKey packet_key(KeyKind kind, const PortId& port,
                                       const ChannelId& channel,
                                       std::uint64_t sequence);

/// Key for a channel end commitment.
[[nodiscard]] CommitmentKey channel_key(const PortId& port, const ChannelId& channel);

/// Key for a connection end commitment.
[[nodiscard]] CommitmentKey connection_key(const ConnectionId& connection);

/// Key for a light client's state commitment.
[[nodiscard]] CommitmentKey client_key(const ClientId& client);

}  // namespace bmg::ibc
