// Commitment keys and values stored in a chain's provable store.
//
// Keys are fixed-width and *monotonic in the sequence number* within
// each (port, channel, kind) subspace:
//
//   [8-byte subspace tag = sha256(domain)[0..8]] [1-byte kind] [8-byte seq]
//
// Fixed width makes the key set prefix-free (a trie requirement), and
// monotonicity makes sealing safe: as long as the newest entry of a
// subspace stays unsealed, inserting the next sequence number can
// never route into a sealed subtree (interval property — see
// DESIGN.md and trie tests).
#pragma once

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg::ibc {

enum class KeyKind : std::uint8_t {
  kPacketCommitment = 0x01,  ///< sender side: packet sent
  kPacketReceipt = 0x02,     ///< receiver side: packet delivered
  kPacketAck = 0x03,         ///< receiver side: acknowledgement written
  kNextSequenceRecv = 0x04,  ///< ordered channels: next expected sequence (seq = 0)
  kChannel = 0x10,           ///< channel end commitment (seq = 0)
  kConnection = 0x11,        ///< connection end commitment (seq = 0)
  kClientState = 0x12,       ///< light client state commitment (seq = 0)
};

/// Key for per-packet entries.
[[nodiscard]] Bytes packet_key(KeyKind kind, const PortId& port, const ChannelId& channel,
                               std::uint64_t sequence);

/// Key for a channel end commitment.
[[nodiscard]] Bytes channel_key(const PortId& port, const ChannelId& channel);

/// Key for a connection end commitment.
[[nodiscard]] Bytes connection_key(const ConnectionId& connection);

/// Key for a light client's state commitment.
[[nodiscard]] Bytes client_key(const ClientId& client);

}  // namespace bmg::ibc
