// Flat zero-copy decode views over wire bytes (the per-event hot path).
//
// The owning decode structs (`Packet::decode`, `SignedQuorumHeader::
// decode`, ...) copy every field onto the heap.  On the hot path —
// a relayer or light client that reads a blob once, checks it, and
// hashes it — those copies are pure overhead.  Each view here parses
// the same wire format but *borrows* the input: variable-length fields
// become string_view/ByteView into the original buffer, fixed fields
// are decoded by value, and every bound (including trailing bytes and
// nested-blob exactness) is verified once at `parse()`, which throws
// CodecError — never UB — on malformed input.
//
// Because the codec is fully canonical (one byte string per value),
// a view can hash its borrowed bytes directly: `signing_digest()` on a
// header view equals digest-of-re-encode without re-encoding.
//
// Borrowing rules (DESIGN.md §11): a view is valid only while the
// buffer it was parsed from is alive and unmodified.  Views are for
// event-scoped reads; anything that must outlive the event goes
// through `to_owned()` (or the owning decode at trust boundaries).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "ibc/packet.hpp"
#include "ibc/quorum.hpp"

namespace bmg::ibc {

/// Zero-copy mirror of `Packet`.
struct PacketView {
  std::uint64_t sequence = 0;
  std::string_view source_port;
  std::string_view source_channel;
  std::string_view dest_port;
  std::string_view dest_channel;
  ByteView data;
  Height timeout_height = 0;
  std::uint64_t timeout_micros = 0;
  /// The full wire encoding this view was parsed from.
  ByteView wire;

  [[nodiscard]] static PacketView parse(ByteView wire);
  [[nodiscard]] Timestamp timeout_timestamp() const noexcept {
    return static_cast<double>(timeout_micros) / 1e6;
  }
  /// Same value as `Packet::commitment()` on the decoded packet.
  [[nodiscard]] Hash32 commitment() const;
  [[nodiscard]] Packet to_owned() const;
};

/// Zero-copy mirror of `Acknowledgement`.
struct AckView {
  bool success = false;
  ByteView result;
  std::string_view error;
  ByteView wire;

  [[nodiscard]] static AckView parse(ByteView wire);
  /// Same value as `Acknowledgement::commitment()`: the codec is
  /// canonical, so this is just sha256(wire).
  [[nodiscard]] Hash32 commitment() const;
  [[nodiscard]] Acknowledgement to_owned() const;
};

/// Zero-copy mirror of `QuorumHeader`.
struct QuorumHeaderView {
  std::string_view chain_id;
  Height height = 0;
  std::uint64_t timestamp_micros = 0;
  Hash32 state_root{};
  Hash32 validator_set_hash{};
  ByteView extra;
  ByteView wire;

  [[nodiscard]] static QuorumHeaderView parse(ByteView wire);
  [[nodiscard]] Timestamp timestamp() const noexcept {
    return static_cast<double>(timestamp_micros) / 1e6;
  }
  /// sha256(wire) — equals `QuorumHeader::signing_digest()`.
  [[nodiscard]] Hash32 signing_digest() const;
  [[nodiscard]] QuorumHeader to_owned() const;
};

/// Zero-copy mirror of `ValidatorSet`: a validated count plus the raw
/// 40-byte (key, stake) records, accessed in place.
struct ValidatorSetView {
  std::uint32_t count = 0;
  /// `count` packed records of [32-byte key][8-byte stake].
  ByteView records;
  ByteView wire;

  [[nodiscard]] static ValidatorSetView parse(ByteView wire);
  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  [[nodiscard]] ByteView key_at(std::uint32_t i) const noexcept {
    return records.subspan(std::size_t{40} * i, 32);
  }
  [[nodiscard]] std::uint64_t stake_at(std::uint32_t i) const noexcept;
  /// sha256(wire) — equals `ValidatorSet::hash()` of the decoded set.
  [[nodiscard]] Hash32 hash() const;
  [[nodiscard]] ValidatorSet to_owned() const;
};

/// Zero-copy mirror of `SignedQuorumHeader`.
struct SignedQuorumHeaderView {
  QuorumHeaderView header;
  std::uint32_t signature_count = 0;
  /// `signature_count` packed records of [32-byte key][64-byte sig].
  ByteView signatures;
  std::optional<ValidatorSetView> next_validators;
  ByteView wire;

  [[nodiscard]] static SignedQuorumHeaderView parse(ByteView wire);
  [[nodiscard]] crypto::PublicKey signer_at(std::uint32_t i) const noexcept;
  [[nodiscard]] ByteView signature_at(std::uint32_t i) const noexcept {
    return signatures.subspan(std::size_t{96} * i + 32, 64);
  }
  /// sha256 of the embedded header blob — equals
  /// `SignedQuorumHeader::signing_digest()` — with no re-encode.
  [[nodiscard]] Hash32 signing_digest() const { return header.signing_digest(); }
  [[nodiscard]] SignedQuorumHeader to_owned() const;
};

}  // namespace bmg::ibc
