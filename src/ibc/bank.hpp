// Minimal multi-denomination bank ledger used by the ICS-20 transfer
// app (escrow / mint / burn semantics).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ibc/types.hpp"

namespace bmg::ibc {

class Bank {
 public:
  using Denom = std::string;
  using Account = std::string;

  void mint(const Account& to, const Denom& denom, std::uint64_t amount);
  /// Throws IbcError on insufficient balance.
  void burn(const Account& from, const Denom& denom, std::uint64_t amount);
  /// Throws IbcError on insufficient balance.
  void transfer(const Account& from, const Account& to, const Denom& denom,
                std::uint64_t amount);

  [[nodiscard]] std::uint64_t balance(const Account& who, const Denom& denom) const;
  [[nodiscard]] std::uint64_t total_supply(const Denom& denom) const;

  /// Full ledger views, for fork baselines and convergence digests.
  [[nodiscard]] const std::map<std::pair<Account, Denom>, std::uint64_t>& balances()
      const noexcept {
    return balances_;
  }
  [[nodiscard]] const std::map<Denom, std::uint64_t>& supplies() const noexcept {
    return supply_;
  }

 private:
  std::map<std::pair<Account, Denom>, std::uint64_t> balances_;
  std::map<Denom, std::uint64_t> supply_;
};

}  // namespace bmg::ibc
