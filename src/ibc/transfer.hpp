// ICS-20 fungible token transfer application.
//
// Escrows native tokens on the source chain and mints prefixed
// vouchers on the destination; returning vouchers are burned at the
// source and released from escrow at home.  Failed or timed-out
// transfers refund the sender.
#pragma once

#include <string>

#include "ibc/bank.hpp"
#include "ibc/module.hpp"

namespace bmg::ibc {

/// Packet payload of an ICS-20 transfer.
struct TokenPacketData {
  std::string denom;
  std::uint64_t amount = 0;
  std::string sender;
  std::string receiver;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static TokenPacketData decode(ByteView wire);

  friend bool operator==(const TokenPacketData&, const TokenPacketData&) = default;
};

class TokenTransferApp final : public IbcApp {
 public:
  TokenTransferApp(IbcModule& module, Bank& bank, PortId port);

  /// Initiates a cross-chain transfer; returns the committed packet
  /// (hand it to a relayer).
  Packet send_transfer(const ChannelId& channel, const std::string& denom,
                       std::uint64_t amount, const std::string& sender,
                       const std::string& receiver, Height timeout_height,
                       Timestamp timeout_timestamp);

  // IbcApp:
  Acknowledgement on_recv_packet(const Packet& packet) override;
  void on_acknowledge(const Packet& packet, const Acknowledgement& ack) override;
  void on_timeout(const Packet& packet) override;

  /// Escrow account holding locked native tokens for `channel`.
  [[nodiscard]] static Bank::Account escrow_account(const ChannelId& channel);

  [[nodiscard]] const PortId& port() const noexcept { return port_; }

 private:
  void refund(const Packet& packet);

  IbcModule& module_;
  Bank& bank_;
  PortId port_;
};

}  // namespace bmg::ibc
