// Sequence bookkeeping that makes sealing safe under out-of-order
// delivery.
//
// Sealing a trie entry is only safe when no *future* insert can route
// into the sealed subtree.  For keys that are monotonic in a sequence
// number this holds iff the sealed set is a contiguous prefix
// [1, k] of the present set and key k+1 is present (interval
// property; proof sketched in DESIGN.md, exercised in trie tests).
//
// SeqTracker maintains that invariant: sequences are mark()ed present
// in any order; drain_sealable() hands out the sequences that may now
// be sealed — everything strictly below the contiguous watermark,
// optionally lagged by `lag` to keep recently-written entries provable
// (used for acknowledgements that relayers still need to prove).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace bmg::ibc {

class SeqTracker {
 public:
  explicit SeqTracker(std::uint64_t lag = 0) : lag_(lag) {}

  /// Marks `seq` present.  Returns false if it was already marked.
  bool mark(std::uint64_t seq);

  [[nodiscard]] bool is_marked(std::uint64_t seq) const;

  /// Largest w such that 1..w are all marked.
  [[nodiscard]] std::uint64_t watermark() const noexcept { return watermark_; }

  /// Sequences that became sealable since the last call: the range
  /// (sealed_upto, watermark - 1 - lag].  Each is returned exactly once.
  [[nodiscard]] std::vector<std::uint64_t> drain_sealable();

  [[nodiscard]] std::uint64_t sealed_upto() const noexcept { return sealed_upto_; }

  /// Number of marked-but-unsealed sequences (the in-flight window).
  [[nodiscard]] std::size_t live_count() const noexcept {
    return static_cast<std::size_t>(watermark_ - sealed_upto_) + pending_.size();
  }

 private:
  std::uint64_t lag_;
  std::uint64_t watermark_ = 0;    ///< 1..watermark all present
  std::uint64_t sealed_upto_ = 0;  ///< 1..sealed_upto handed out for sealing
  std::set<std::uint64_t> pending_;  ///< present sequences > watermark
};

}  // namespace bmg::ibc
