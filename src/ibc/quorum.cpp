#include "ibc/quorum.hpp"

#include <algorithm>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

std::uint64_t ValidatorSet::total_stake() const {
  std::uint64_t sum = 0;
  for (const auto& v : validators) sum += v.stake;
  return sum;
}

std::uint64_t ValidatorSet::quorum_stake() const { return total_stake() * 2 / 3 + 1; }

std::optional<std::uint64_t> ValidatorSet::stake_of(const crypto::PublicKey& key) const {
  for (const auto& v : validators)
    if (v.key == key) return v.stake;
  return std::nullopt;
}

bool ValidatorSet::contains(const crypto::PublicKey& key) const {
  return stake_of(key).has_value();
}

Bytes ValidatorSet::encode() const {
  Encoder e;
  e.u32(static_cast<std::uint32_t>(validators.size()));
  for (const auto& v : validators) {
    e.raw(v.key.view());
    e.u64(v.stake);
  }
  return e.take();
}

ValidatorSet ValidatorSet::decode(ByteView wire) {
  Decoder d(wire);
  ValidatorSet set;
  const std::uint32_t n = d.u32();
  // Bound the allocation by the bytes actually present (40 per entry)
  // — a hostile length prefix must not trigger a huge reserve.
  if (n > d.remaining() / 40) throw CodecError("validator set: implausible count");
  set.validators.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ValidatorInfo v;
    const Bytes raw = d.raw(32);
    crypto::ed25519::PublicKeyBytes pk;
    std::copy(raw.begin(), raw.end(), pk.begin());
    v.key = crypto::PublicKey(pk);
    v.stake = d.u64();
    set.validators.push_back(v);
  }
  d.expect_done();
  return set;
}

Hash32 ValidatorSet::hash() const { return crypto::Sha256::digest(encode()); }

Bytes QuorumHeader::encode() const {
  Encoder e;
  e.str(chain_id)
      .u64(height)
      .u64(static_cast<std::uint64_t>(timestamp * 1e6 + 0.5))
      .hash(state_root)
      .hash(validator_set_hash)
      .bytes(extra);
  return e.take();
}

QuorumHeader QuorumHeader::decode(ByteView wire) {
  Decoder d(wire);
  QuorumHeader h;
  h.chain_id = d.str();
  h.height = d.u64();
  h.timestamp = static_cast<double>(d.u64()) / 1e6;
  h.state_root = d.hash();
  h.validator_set_hash = d.hash();
  h.extra = d.bytes();
  d.expect_done();
  return h;
}

Hash32 QuorumHeader::signing_digest() const { return crypto::Sha256::digest(encode()); }

Bytes SignedQuorumHeader::encode() const {
  Encoder e;
  e.bytes(header.encode());
  e.u32(static_cast<std::uint32_t>(signatures.size()));
  for (const auto& [key, sig] : signatures) {
    e.raw(key.view());
    e.raw(sig.view());
  }
  e.boolean(next_validators.has_value());
  if (next_validators) e.bytes(next_validators->encode());
  return e.take();
}

SignedQuorumHeader SignedQuorumHeader::decode(ByteView wire) {
  Decoder d(wire);
  SignedQuorumHeader sh;
  sh.header = QuorumHeader::decode(d.bytes());
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes key_raw = d.raw(32);
    crypto::ed25519::PublicKeyBytes pk;
    std::copy(key_raw.begin(), key_raw.end(), pk.begin());
    const Bytes sig_raw = d.raw(64);
    crypto::ed25519::SignatureBytes sig;
    std::copy(sig_raw.begin(), sig_raw.end(), sig.begin());
    sh.signatures.emplace_back(crypto::PublicKey(pk), crypto::Signature(sig));
  }
  if (d.boolean()) sh.next_validators = ValidatorSet::decode(d.bytes());
  d.expect_done();
  return sh;
}

std::size_t SignedQuorumHeader::byte_size() const { return encode().size(); }

QuorumLightClient::QuorumLightClient(std::string chain_id, ValidatorSet genesis_validators)
    : chain_id_(std::move(chain_id)), validators_(std::move(genesis_validators)) {}

std::uint64_t QuorumLightClient::verify_signatures(const SignedQuorumHeader& sh,
                                                   const ValidatorSet& validators) {
  const Hash32 digest = sh.header.signing_digest();
  std::uint64_t power = 0;
  std::vector<crypto::PublicKey> seen;
  for (const auto& [key, sig] : sh.signatures) {
    if (std::find(seen.begin(), seen.end(), key) != seen.end())
      throw IbcError("quorum client: duplicate signer");
    seen.push_back(key);
    const auto stake = validators.stake_of(key);
    if (!stake) throw IbcError("quorum client: signer not in validator set");
    if (!crypto::verify(key, digest.view(), sig))
      throw IbcError("quorum client: invalid signature");
    power += *stake;
  }
  return power;
}

void QuorumLightClient::apply(const SignedQuorumHeader& sh) {
  states_[sh.header.height] =
      ConsensusState{sh.header.state_root, sh.header.timestamp};
  latest_ = std::max(latest_, sh.header.height);
  if (sh.next_validators) validators_ = *sh.next_validators;
}

void QuorumLightClient::update(ByteView header) {
  if (frozen_) throw IbcError("quorum client: frozen on misbehaviour");
  const SignedQuorumHeader sh = SignedQuorumHeader::decode(header);
  if (sh.header.chain_id != chain_id_)
    throw IbcError("quorum client: wrong chain id");
  if (sh.header.height <= latest_)
    throw IbcError("quorum client: non-monotonic header height");
  if (sh.header.validator_set_hash != validators_.hash())
    throw IbcError("quorum client: header names an unknown validator set");
  if (sh.next_validators &&
      sh.next_validators->validators.empty())
    throw IbcError("quorum client: empty next validator set");
  const std::uint64_t power = verify_signatures(sh, validators_);
  if (power < validators_.quorum_stake())
    throw IbcError("quorum client: insufficient signing stake");
  apply(sh);
}

void QuorumLightClient::accept_verified(const SignedQuorumHeader& sh) {
  if (frozen_) throw IbcError("quorum client: frozen on misbehaviour");
  if (sh.header.chain_id != chain_id_)
    throw IbcError("quorum client: wrong chain id");
  if (sh.header.height <= latest_)
    throw IbcError("quorum client: non-monotonic header height");
  apply(sh);
}

std::optional<ConsensusState> QuorumLightClient::consensus_at(Height h) const {
  if (frozen_) return std::nullopt;  // frozen clients verify nothing
  const auto it = states_.find(h);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

void QuorumLightClient::submit_misbehaviour(const SignedQuorumHeader& a,
                                            const SignedQuorumHeader& b) {
  if (a.header.chain_id != chain_id_ || b.header.chain_id != chain_id_)
    throw IbcError("misbehaviour: wrong chain id");
  if (a.header.height != b.header.height)
    throw IbcError("misbehaviour: headers at different heights");
  if (a.header.signing_digest() == b.header.signing_digest())
    throw IbcError("misbehaviour: headers are identical");
  // Both must be properly finalised by the tracked validator set —
  // otherwise anyone could freeze the client with garbage.
  if (verify_signatures(a, validators_) < validators_.quorum_stake() ||
      verify_signatures(b, validators_) < validators_.quorum_stake())
    throw IbcError("misbehaviour: headers lack quorum signatures");
  frozen_ = true;
}

Height QuorumLightClient::latest_height() const { return latest_; }

}  // namespace bmg::ibc
