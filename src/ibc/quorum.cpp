#include "ibc/quorum.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/codec.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"
#include "ibc/views.hpp"

namespace bmg::ibc {

void ValidatorSet::invalidate() noexcept {
  hash_.reset();
  total_stake_.reset();
  index_.reset();
}

void ValidatorSet::add(crypto::PublicKey key, std::uint64_t stake) {
  validators_.push_back(ValidatorInfo{std::move(key), stake});
  invalidate();
}

void ValidatorSet::assign(std::vector<ValidatorInfo> validators) {
  validators_ = std::move(validators);
  invalidate();
}

std::uint64_t ValidatorSet::total_stake() const {
  if (!total_stake_) {
    std::uint64_t sum = 0;
    for (const auto& v : validators_) sum += v.stake;
    total_stake_ = sum;
  }
  return *total_stake_;
}

std::uint64_t ValidatorSet::quorum_stake() const { return total_stake() * 2 / 3 + 1; }

std::optional<std::uint64_t> ValidatorSet::stake_of(const crypto::PublicKey& key) const {
  if (!index_) {
    index_.emplace();
    index_->reserve(validators_.size());
    // emplace keeps the first entry on duplicate keys, matching the
    // linear scan this index replaced.
    for (const auto& v : validators_) index_->emplace(v.key, v.stake);
  }
  const auto it = index_->find(key);
  if (it == index_->end()) return std::nullopt;
  return it->second;
}

bool ValidatorSet::contains(const crypto::PublicKey& key) const {
  return stake_of(key).has_value();
}

Bytes ValidatorSet::encode() const {
  Encoder e(byte_size());
  encode_into(e);
  return e.take();
}

void ValidatorSet::encode_into(Encoder& e) const {
  e.reserve(byte_size());
  e.u32(static_cast<std::uint32_t>(validators_.size()));
  for (const auto& v : validators_) {
    e.raw(v.key.view());
    e.u64(v.stake);
  }
}

ValidatorSet ValidatorSet::decode(ByteView wire) {
  Decoder d(wire);
  const std::uint32_t n = d.u32();
  // Bound the allocation by the bytes actually present (40 per entry)
  // — a hostile length prefix must not trigger a huge reserve.
  if (n > d.remaining() / 40) throw CodecError("validator set: implausible count");
  std::vector<ValidatorInfo> vals;
  vals.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ValidatorInfo v;
    const Bytes raw = d.raw(32);
    crypto::ed25519::PublicKeyBytes pk;
    std::copy(raw.begin(), raw.end(), pk.begin());
    v.key = crypto::PublicKey(pk);
    v.stake = d.u64();
    vals.push_back(v);
  }
  d.expect_done();
  return ValidatorSet(std::move(vals));
}

const Hash32& ValidatorSet::hash() const {
  if (!hash_) hash_ = crypto::Sha256::digest(encode());
  return *hash_;
}

std::size_t ValidatorSet::byte_size() const noexcept {
  return 4 + 40 * validators_.size();  // u32 count + (32-byte key, u64 stake) each
}

Bytes QuorumHeader::encode() const {
  Encoder e(byte_size());
  encode_into(e);
  return e.take();
}

void QuorumHeader::encode_into(Encoder& e) const {
  e.reserve(byte_size());
  e.str(chain_id)
      .u64(height)
      .u64(static_cast<std::uint64_t>(timestamp * 1e6 + 0.5))
      .hash(state_root)
      .hash(validator_set_hash)
      .bytes(extra);
}

QuorumHeader QuorumHeader::decode(ByteView wire) {
  Decoder d(wire);
  QuorumHeader h;
  h.chain_id = d.str();
  h.height = d.u64();
  h.timestamp = static_cast<double>(d.u64()) / 1e6;
  h.state_root = d.hash();
  h.validator_set_hash = d.hash();
  h.extra = d.bytes();
  d.expect_done();
  return h;
}

Hash32 QuorumHeader::signing_digest() const { return crypto::Sha256::digest(encode()); }

std::size_t QuorumHeader::byte_size() const noexcept {
  // str/bytes carry a u32 length prefix; u64s are 8 bytes, hashes 32.
  return (4 + chain_id.size()) + 8 + 8 + 32 + 32 + (4 + extra.size());
}

Bytes SignedQuorumHeader::encode() const {
  Encoder e(byte_size());
  encode_into(e);
  return e.take();
}

void SignedQuorumHeader::encode_into(Encoder& e) const {
  e.reserve(byte_size());
  e.u32(static_cast<std::uint32_t>(header.byte_size()));
  header.encode_into(e);
  e.u32(static_cast<std::uint32_t>(signatures.size()));
  for (const auto& [key, sig] : signatures) {
    e.raw(key.view());
    e.raw(sig.view());
  }
  e.boolean(next_validators.has_value());
  if (next_validators) {
    e.u32(static_cast<std::uint32_t>(next_validators->byte_size()));
    next_validators->encode_into(e);
  }
}

SignedQuorumHeader SignedQuorumHeader::decode(ByteView wire) {
  Decoder d(wire);
  SignedQuorumHeader sh;
  sh.header = QuorumHeader::decode(d.bytes());
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes key_raw = d.raw(32);
    crypto::ed25519::PublicKeyBytes pk;
    std::copy(key_raw.begin(), key_raw.end(), pk.begin());
    const Bytes sig_raw = d.raw(64);
    crypto::ed25519::SignatureBytes sig;
    std::copy(sig_raw.begin(), sig_raw.end(), sig.begin());
    sh.signatures.emplace_back(crypto::PublicKey(pk), crypto::Signature(sig));
  }
  if (d.boolean()) sh.next_validators = ValidatorSet::decode(d.bytes());
  d.expect_done();
  return sh;
}

std::size_t SignedQuorumHeader::byte_size() const noexcept {
  std::size_t n = 4 + header.byte_size();             // length-prefixed header blob
  n += 4 + signatures.size() * (32 + 64);             // count + (key, sig) pairs
  n += 1;                                             // next_validators flag
  if (next_validators) n += 4 + next_validators->byte_size();
  return n;
}

const Hash32& SignedQuorumHeader::signing_digest() const {
  if (!digest_) digest_ = header.signing_digest();
  return *digest_;
}

QuorumLightClient::QuorumLightClient(std::string chain_id, ValidatorSet genesis_validators)
    : chain_id_(std::move(chain_id)), validators_(std::move(genesis_validators)) {}

std::uint64_t QuorumLightClient::verify_signatures(const SignedQuorumHeader& sh,
                                                   const ValidatorSet& validators) {
  const Hash32& digest = sh.signing_digest();
  // First pass: membership and uniqueness, before paying for any curve
  // arithmetic.  A header failing these is rejected for free.
  std::uint64_t power = 0;
  std::unordered_set<crypto::PublicKey, crypto::PublicKeyHasher> seen;
  seen.reserve(sh.signatures.size());
  for (const auto& [key, sig] : sh.signatures) {
    if (!seen.insert(key).second) throw IbcError("quorum client: duplicate signer");
    const auto stake = validators.stake_of(key);
    if (!stake) throw IbcError("quorum client: signer not in validator set");
    power += *stake;
  }
  // Second pass: one batched verification over every signature — all
  // of them sign the same digest, the textbook batch-friendly shape.
  std::vector<crypto::ed25519::VerifyItem> items;
  items.reserve(sh.signatures.size());
  for (const auto& [key, sig] : sh.signatures)
    items.push_back({key.raw(), digest.view(), sig.raw()});
  const std::vector<bool> ok = crypto::ed25519::verify_batch(items);
  for (const bool good : ok)
    if (!good) throw IbcError("quorum client: invalid signature");
  return power;
}

std::uint64_t QuorumLightClient::verify_signatures(const SignedQuorumHeaderView& sh,
                                                   const ValidatorSet& validators) {
  const Hash32 digest = sh.signing_digest();
  // First pass: membership and uniqueness, before paying for any curve
  // arithmetic.  A header failing these is rejected for free.
  std::uint64_t power = 0;
  std::unordered_set<crypto::PublicKey, crypto::PublicKeyHasher> seen;
  seen.reserve(sh.signature_count);
  for (std::uint32_t i = 0; i < sh.signature_count; ++i) {
    const crypto::PublicKey key = sh.signer_at(i);
    if (!seen.insert(key).second) throw IbcError("quorum client: duplicate signer");
    const auto stake = validators.stake_of(key);
    if (!stake) throw IbcError("quorum client: signer not in validator set");
    power += *stake;
  }
  // Second pass: one batched verification, keys and signatures read
  // straight out of the wire records.
  std::vector<crypto::ed25519::VerifyItem> items;
  items.reserve(sh.signature_count);
  for (std::uint32_t i = 0; i < sh.signature_count; ++i) {
    crypto::ed25519::SignatureBytes sig;
    const ByteView s = sh.signature_at(i);
    std::memcpy(sig.data(), s.data(), sig.size());
    items.push_back({sh.signer_at(i).raw(), digest.view(), sig});
  }
  const std::vector<bool> ok = crypto::ed25519::verify_batch(items);
  for (const bool good : ok)
    if (!good) throw IbcError("quorum client: invalid signature");
  return power;
}

void QuorumLightClient::apply(const SignedQuorumHeader& sh) {
  states_[sh.header.height] =
      ConsensusState{sh.header.state_root, sh.header.timestamp};
  latest_ = std::max(latest_, sh.header.height);
  if (sh.next_validators) validators_ = *sh.next_validators;
}

void QuorumLightClient::update(ByteView header) {
  if (frozen_) throw IbcError("quorum client: frozen on misbehaviour");
  const SignedQuorumHeaderView sh = SignedQuorumHeaderView::parse(header);
  if (sh.header.chain_id != chain_id_)
    throw IbcError("quorum client: wrong chain id");
  if (sh.header.height <= latest_)
    throw IbcError("quorum client: non-monotonic header height");
  if (sh.header.validator_set_hash != validators_.hash())
    throw IbcError("quorum client: header names an unknown validator set");
  if (sh.next_validators && sh.next_validators->empty())
    throw IbcError("quorum client: empty next validator set");
  const std::uint64_t power = verify_signatures(sh, validators_);
  if (power < validators_.quorum_stake())
    throw IbcError("quorum client: insufficient signing stake");
  states_[sh.header.height] =
      ConsensusState{sh.header.state_root, sh.header.timestamp()};
  latest_ = std::max(latest_, sh.header.height);
  // Epoch rotation is the one place the set must outlive the event:
  // materialise an owning copy only now, after full verification.
  if (sh.next_validators) validators_ = sh.next_validators->to_owned();
}

void QuorumLightClient::accept_verified(const SignedQuorumHeader& sh) {
  if (frozen_) throw IbcError("quorum client: frozen on misbehaviour");
  if (sh.header.chain_id != chain_id_)
    throw IbcError("quorum client: wrong chain id");
  if (sh.header.height <= latest_)
    throw IbcError("quorum client: non-monotonic header height");
  apply(sh);
}

std::optional<ConsensusState> QuorumLightClient::consensus_at(Height h) const {
  if (frozen_) return std::nullopt;  // frozen clients verify nothing
  const auto it = states_.find(h);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

void QuorumLightClient::submit_misbehaviour(const SignedQuorumHeader& a,
                                            const SignedQuorumHeader& b) {
  if (a.header.chain_id != chain_id_ || b.header.chain_id != chain_id_)
    throw IbcError("misbehaviour: wrong chain id");
  if (a.header.height != b.header.height)
    throw IbcError("misbehaviour: headers at different heights");
  if (a.signing_digest() == b.signing_digest())
    throw IbcError("misbehaviour: headers are identical");
  // Both must be properly finalised by the tracked validator set —
  // otherwise anyone could freeze the client with garbage.
  if (verify_signatures(a, validators_) < validators_.quorum_stake() ||
      verify_signatures(b, validators_) < validators_.quorum_stake())
    throw IbcError("misbehaviour: headers lack quorum signatures");
  frozen_ = true;
}

Height QuorumLightClient::latest_height() const { return latest_; }

}  // namespace bmg::ibc
