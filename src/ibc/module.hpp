// The IBC protocol engine (ICS-2/3/4 core) a chain embeds.
//
// The module owns the chain's IBC state: light clients of
// counterparties, connection and channel ends, and the packet
// commitments / receipts / acknowledgements written into the chain's
// provable store (a SealableTrie).  It is chain-agnostic — the guest
// contract and the Tendermint-like counterparty both embed one — and
// passive: callers supply their own chain context (height, time)
// where the protocol needs it.
#pragma once

#include <functional>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ibc/client.hpp"
#include "ibc/commitment.hpp"
#include "ibc/handshake.hpp"
#include "ibc/packet.hpp"
#include "ibc/seq_tracker.hpp"
#include "trie/trie.hpp"

namespace bmg::ibc {

/// Application module bound to a port (ICS-5/25 surface).
class IbcApp {
 public:
  virtual ~IbcApp() = default;
  /// Handles a delivered packet; the returned ack is written on-chain.
  /// Throwing produces an error acknowledgement instead of aborting.
  virtual Acknowledgement on_recv_packet(const Packet& packet) = 0;
  /// Counterparty acknowledged `packet`.
  virtual void on_acknowledge(const Packet& packet, const Acknowledgement& ack) = 0;
  /// `packet` provably timed out.
  virtual void on_timeout(const Packet& packet) = 0;
};

/// What a chain commits about each of its light clients: the tracked
/// chain id and validator-set hash.  Counterparties verify this during
/// connection handshakes (validate_self_client — the check the paper's
/// footnote 2 calls out as left blank in NEAR-IBC).
struct ClientStateCommitment {
  std::string chain_id;
  Hash32 validator_set_hash{};

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ClientStateCommitment decode(ByteView wire);
  [[nodiscard]] Hash32 commitment() const;

  friend bool operator==(const ClientStateCommitment&, const ClientStateCommitment&) =
      default;
};

class IbcModule {
 public:
  /// `ack_seal_lag`: how many sequences behind the receipt watermark
  /// acknowledgement entries are sealed (they must stay provable until
  /// the relayer has shipped them to the counterparty).
  explicit IbcModule(trie::SealableTrie& store, std::uint64_t ack_seal_lag = 64);

  /// Declares this chain's own identity: its chain id and a getter
  /// for the hash of its *current* validator set.  Once set, incoming
  /// connection handshakes must carry a provable counterparty client
  /// state naming this identity (validate_self_client); without it the
  /// validation is skipped (unit-test mode).
  void set_self_identity(std::string chain_id,
                         std::function<Hash32()> current_validator_set_hash);

  // -- clients ---------------------------------------------------------
  ClientId add_client(std::unique_ptr<LightClient> client);
  [[nodiscard]] LightClient& client(const ClientId& id);
  [[nodiscard]] const LightClient& client(const ClientId& id) const;
  void update_client(const ClientId& id, ByteView header);
  /// Re-commits a client's state after it changed through a path that
  /// bypassed update_client (e.g. the guest contract's chunked
  /// accept_verified flow).
  void refresh_client_state(const ClientId& id) { store_client_state(id); }

  // -- connection handshake (ICS-3) -------------------------------------
  ConnectionId conn_open_init(const ClientId& client, const ClientId& counterparty_client);
  /// On chain B: proves A stored its end in INIT.  When this chain has
  /// a self identity, `counterparty_client_state` (with its membership
  /// proof at the same height) must show A's client really tracks this
  /// chain — chain id and current validator set (validate_self_client).
  ConnectionId conn_open_try(const ClientId& client, const ClientId& counterparty_client,
                             const ConnectionId& counterparty_connection,
                             const ConnectionEnd& counterparty_end, Height proof_height,
                             const trie::Proof& proof,
                             const std::optional<ClientStateCommitment>&
                                 counterparty_client_state = std::nullopt,
                             const trie::Proof& client_state_proof = {});
  /// On chain A: proves B stored its end in TRYOPEN (+ self-client
  /// validation as in conn_open_try).
  void conn_open_ack(const ConnectionId& connection,
                     const ConnectionId& counterparty_connection,
                     const ConnectionEnd& counterparty_end, Height proof_height,
                     const trie::Proof& proof,
                     const std::optional<ClientStateCommitment>&
                         counterparty_client_state = std::nullopt,
                     const trie::Proof& client_state_proof = {});
  /// On chain B: proves A stored its end in OPEN.
  void conn_open_confirm(const ConnectionId& connection,
                         const ConnectionEnd& counterparty_end, Height proof_height,
                         const trie::Proof& proof);

  // -- channel handshake (ICS-4) ----------------------------------------
  ChannelId chan_open_init(const PortId& port, const ConnectionId& connection,
                           const PortId& counterparty_port,
                           ChannelOrder order = ChannelOrder::kUnordered);
  ChannelId chan_open_try(const PortId& port, const ConnectionId& connection,
                          const PortId& counterparty_port,
                          const ChannelId& counterparty_channel,
                          const ChannelEnd& counterparty_end, Height proof_height,
                          const trie::Proof& proof,
                          ChannelOrder order = ChannelOrder::kUnordered);
  void chan_open_ack(const PortId& port, const ChannelId& channel,
                     const ChannelId& counterparty_channel,
                     const ChannelEnd& counterparty_end, Height proof_height,
                     const trie::Proof& proof);
  void chan_open_confirm(const PortId& port, const ChannelId& channel,
                         const ChannelEnd& counterparty_end, Height proof_height,
                         const trie::Proof& proof);

  /// Closes this end of a channel (apps or governance initiate).
  void chan_close_init(const PortId& port, const ChannelId& channel);
  /// Closes this end after proving the counterparty closed theirs.
  void chan_close_confirm(const PortId& port, const ChannelId& channel,
                          const ChannelEnd& counterparty_end, Height proof_height,
                          const trie::Proof& proof);

  // -- packet flow (ICS-4, unordered channels) ---------------------------
  /// Commits an outgoing packet; returns it with the assigned sequence
  /// and destination filled in from the channel end.
  Packet send_packet(const PortId& port, const ChannelId& channel, Bytes data,
                     Height timeout_height, Timestamp timeout_timestamp);

  /// Delivers an incoming packet: verifies the commitment proof
  /// against the connection's light client, guards double delivery,
  /// invokes the bound app, writes receipt + ack.  `self_height` and
  /// `self_time` are this chain's current block context (timeout
  /// enforcement on the receiving side).
  Acknowledgement recv_packet(const Packet& packet, Height proof_height,
                              const trie::Proof& proof, Height self_height,
                              Timestamp self_time);

  /// Processes an acknowledgement for a packet this chain sent.
  void acknowledge_packet(const Packet& packet, const Acknowledgement& ack,
                          Height proof_height, const trie::Proof& proof);

  /// Proves the packet was never delivered before its timeout and
  /// releases it (refunds etc. via the app callback).  Unordered
  /// channels prove the *absence* of the receipt.
  void timeout_packet(const Packet& packet, Height proof_height,
                      const trie::Proof& receipt_absence_proof);

  /// Ordered-channel timeout: proves the counterparty's
  /// next-sequence-recv is still <= the packet's sequence.  Per ICS-4
  /// a timed-out ordered channel closes.
  void timeout_packet_ordered(const Packet& packet, std::uint64_t claimed_next_recv,
                              Height proof_height, const trie::Proof& proof);

  /// Next sequence this chain expects to receive on an ordered channel.
  [[nodiscard]] std::uint64_t next_recv_sequence(const PortId& port,
                                                 const ChannelId& id) const;

  // -- apps ---------------------------------------------------------------
  void bind_port(const PortId& port, IbcApp* app);

  /// Off-chain observer notified of every packet this module commits
  /// (what a relayer's event subscription sees).
  void set_packet_listener(std::function<void(const Packet&)> listener) {
    packet_listener_ = std::move(listener);
  }

  // -- introspection (used by relayers and tests) --------------------------
  [[nodiscard]] const ConnectionEnd& connection(const ConnectionId& id) const;
  [[nodiscard]] const ChannelEnd& channel(const PortId& port, const ChannelId& id) const;
  [[nodiscard]] std::uint64_t next_send_sequence(const PortId& port,
                                                 const ChannelId& id) const;
  [[nodiscard]] trie::SealableTrie& store() noexcept { return store_; }
  [[nodiscard]] const trie::SealableTrie& store() const noexcept { return store_; }

  /// True if the receipt for (port, channel, seq) exists (live or sealed).
  [[nodiscard]] bool packet_received(const PortId& port, const ChannelId& channel,
                                     std::uint64_t seq) const;
  /// True if the commitment for an outgoing packet is still pending
  /// (not yet acked or timed out).
  [[nodiscard]] bool packet_pending(const PortId& port, const ChannelId& channel,
                                    std::uint64_t seq) const;

  // -- resync / audit surface ---------------------------------------------
  // A crash-restarted relayer rebuilds its in-memory queues from these
  // queries alone (the "scan on-chain state" half of IBC's
  // any-party-can-relay guarantee); the invariant auditor walks the
  // same surface every block.

  /// Every (port, channel) pair this module has channel state for.
  [[nodiscard]] std::vector<std::pair<PortId, ChannelId>> channels() const;

  /// Outgoing sequences whose commitment is still unresolved (sent,
  /// not yet acked or timed out), in increasing sequence order.
  [[nodiscard]] std::vector<std::uint64_t> pending_send_sequences(
      const PortId& port, const ChannelId& channel) const;

  /// Full packet body for an unresolved outgoing sequence (the
  /// event-log lookup a restarted relayer replays; entries are pruned
  /// once the packet is acked or timed out).  Null when resolved or
  /// never sent.
  [[nodiscard]] const Packet* sent_packet(const PortId& port, const ChannelId& channel,
                                          std::uint64_t seq) const;

  /// The acknowledgement this chain wrote when it delivered (port,
  /// channel, seq); nullopt if not delivered yet.
  [[nodiscard]] std::optional<Acknowledgement> ack_for(const PortId& port,
                                                       const ChannelId& channel,
                                                       std::uint64_t seq) const;

  /// Per-channel sequence counters and seq-tracker watermarks (the
  /// auditor's monotonicity surface).
  struct ChannelSequences {
    std::uint64_t next_send = 1;
    std::uint64_t next_recv = 1;
    std::uint64_t resolved_watermark = 0;
    std::uint64_t receipts_watermark = 0;
    std::uint64_t acks_watermark = 0;
  };
  [[nodiscard]] ChannelSequences sequences(const PortId& port,
                                           const ChannelId& channel) const;

 private:
  struct ChannelRecord {
    ChannelEnd end;
    std::uint64_t next_send = 1;
    std::uint64_t next_recv = 1;  ///< ordered channels only
    SeqTracker resolved_commitments;  ///< acked or timed-out outgoing packets
    SeqTracker receipts;              ///< delivered incoming packets
    SeqTracker acks;                  ///< written acknowledgements (lagged sealing)
  };

  [[nodiscard]] ChannelRecord& channel_record(const PortId& port, const ChannelId& id);
  [[nodiscard]] const ChannelRecord& channel_record(const PortId& port,
                                                    const ChannelId& id) const;

  /// Verifies a membership/non-membership proof against the consensus
  /// state that `connection`'s client has for `proof_height`.
  void verify_membership(const ConnectionEnd& conn, Height proof_height,
                         const trie::Proof& proof, ByteView key, const Hash32& value,
                         const char* what) const;
  void verify_non_membership(const ConnectionEnd& conn, Height proof_height,
                             const trie::Proof& proof, ByteView key,
                             const char* what) const;
  [[nodiscard]] ConsensusState consensus_for(const ConnectionEnd& conn,
                                             Height proof_height,
                                             const char* what) const;

  void store_connection(const ConnectionId& id, const ConnectionEnd& end);
  void store_channel(const PortId& port, const ChannelId& id, const ChannelEnd& end);
  void seal_resolved(const PortId& port, const ChannelId& id, ChannelRecord& rec);

  [[nodiscard]] IbcApp& app_for(const PortId& port);

  void store_client_state(const ClientId& id);
  /// validate_self_client: checks a proven counterparty client state
  /// against this chain's declared identity.
  void validate_self_client(const ConnectionEnd& conn_for_proof, Height proof_height,
                            const ClientId& counterparty_client,
                            const std::optional<ClientStateCommitment>& claimed,
                            const trie::Proof& proof) const;

  std::string self_chain_id_;
  std::function<Hash32()> self_validator_set_hash_;

  trie::SealableTrie& store_;
  std::uint64_t ack_seal_lag_;
  std::function<void(const Packet&)> packet_listener_;
  std::map<ClientId, std::unique_ptr<LightClient>> clients_;
  std::map<ConnectionId, ConnectionEnd> connections_;
  std::map<std::pair<PortId, ChannelId>, ChannelRecord> channels_;
  /// Unresolved outgoing packet bodies (pruned on ack / timeout) and
  /// written acknowledgements, keyed by (port, channel, seq).
  std::map<std::tuple<PortId, ChannelId, std::uint64_t>, Packet> sent_packets_;
  std::map<std::tuple<PortId, ChannelId, std::uint64_t>, Acknowledgement> ack_log_;
  std::map<PortId, IbcApp*> apps_;
  std::uint64_t next_client_ = 0;
  std::uint64_t next_connection_ = 0;
  std::uint64_t next_channel_ = 0;
};

}  // namespace bmg::ibc
