// IBC packets (ICS-4).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg::ibc {

struct Packet {
  std::uint64_t sequence = 0;
  PortId source_port;
  ChannelId source_channel;
  PortId dest_port;
  ChannelId dest_channel;
  Bytes data;
  /// Packet times out if not received before this destination height
  /// (0 = no height timeout) ...
  Height timeout_height = 0;
  /// ... or before this destination timestamp (0 = no time timeout).
  Timestamp timeout_timestamp = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Packet decode(ByteView wire);

  /// The value committed on the sender chain:
  /// sha256(timeout_height || timeout_timestamp || sha256(data)).
  [[nodiscard]] Hash32 commitment() const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Standard acknowledgement envelope: success with app bytes, or error
/// with a reason string.
struct Acknowledgement {
  bool success = false;
  Bytes result;       ///< app-defined, on success
  std::string error;  ///< reason, on failure

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Acknowledgement decode(ByteView wire);
  [[nodiscard]] Hash32 commitment() const;

  [[nodiscard]] static Acknowledgement ok(Bytes result = {});
  [[nodiscard]] static Acknowledgement fail(std::string reason);
};

}  // namespace bmg::ibc
