// IBC packets (ICS-4).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg {
class Encoder;
}

namespace bmg::ibc {

struct Packet {
  std::uint64_t sequence = 0;
  PortId source_port;
  ChannelId source_channel;
  PortId dest_port;
  ChannelId dest_channel;
  Bytes data;
  /// Packet times out if not received before this destination height
  /// (0 = no height timeout) ...
  Height timeout_height = 0;
  /// ... or before this destination timestamp (0 = no time timeout).
  Timestamp timeout_timestamp = 0;

  [[nodiscard]] Bytes encode() const;
  /// Appends the wire encoding to `e` (exactly `wire_size()` bytes) —
  /// lets payload builders inline the packet without a temporary.
  void encode_into(Encoder& e) const;
  /// Serialized size, computed arithmetically (no encode).
  [[nodiscard]] std::size_t wire_size() const noexcept;
  [[nodiscard]] static Packet decode(ByteView wire);

  /// The value committed on the sender chain:
  /// sha256(timeout_height || timeout_timestamp || sha256(data)).
  /// Hashed once and cached — a packet is committed, proven, received,
  /// and acknowledged with the same bytes, so repeated relays stop
  /// re-hashing identical preimages.  Packets are value objects: built
  /// or decoded, then only read.  Mutating a field after the first
  /// commitment() call is a bug (same rule as SignedQuorumHeader's
  /// cached signing digest).
  [[nodiscard]] const Hash32& commitment() const;
  /// Recomputes the commitment from the current field values, ignoring
  /// (and not touching) the memo.  Verification at trust boundaries
  /// (recv/ack/timeout) uses this so a caller-tampered packet can never
  /// ride in on a stale cache — e.g. NRVO can carry send_packet's memo
  /// into the caller's object, bypassing the cache-dropping copy/move.
  [[nodiscard]] Hash32 compute_commitment() const;

  // Copies and moves drop the memoised commitment: the usual reason to
  // take a packet out of its resting place is to derive a modified one
  // (tests, adversarial relays), and a carried-over cache would
  // silently serve the old hash.  The memoisation pays off where it
  // matters — a packet parked in a queue or map has commitment() asked
  // of it many times between moves.
  Packet() = default;
  Packet(Packet&& o) noexcept
      : sequence(o.sequence),
        source_port(std::move(o.source_port)),
        source_channel(std::move(o.source_channel)),
        dest_port(std::move(o.dest_port)),
        dest_channel(std::move(o.dest_channel)),
        data(std::move(o.data)),
        timeout_height(o.timeout_height),
        timeout_timestamp(o.timeout_timestamp) {}
  Packet& operator=(Packet&& o) noexcept {
    sequence = o.sequence;
    source_port = std::move(o.source_port);
    source_channel = std::move(o.source_channel);
    dest_port = std::move(o.dest_port);
    dest_channel = std::move(o.dest_channel);
    data = std::move(o.data);
    timeout_height = o.timeout_height;
    timeout_timestamp = o.timeout_timestamp;
    commitment_.reset();
    return *this;
  }
  Packet(const Packet& o)
      : sequence(o.sequence),
        source_port(o.source_port),
        source_channel(o.source_channel),
        dest_port(o.dest_port),
        dest_channel(o.dest_channel),
        data(o.data),
        timeout_height(o.timeout_height),
        timeout_timestamp(o.timeout_timestamp) {}
  Packet& operator=(const Packet& o) {
    if (this != &o) {
      sequence = o.sequence;
      source_port = o.source_port;
      source_channel = o.source_channel;
      dest_port = o.dest_port;
      dest_channel = o.dest_channel;
      data = o.data;
      timeout_height = o.timeout_height;
      timeout_timestamp = o.timeout_timestamp;
      commitment_.reset();
    }
    return *this;
  }

  friend bool operator==(const Packet& a, const Packet& b) {
    return a.sequence == b.sequence && a.source_port == b.source_port &&
           a.source_channel == b.source_channel && a.dest_port == b.dest_port &&
           a.dest_channel == b.dest_channel && a.data == b.data &&
           a.timeout_height == b.timeout_height &&
           a.timeout_timestamp == b.timeout_timestamp;
  }

 private:
  mutable std::optional<Hash32> commitment_;
};

/// Standard acknowledgement envelope: success with app bytes, or error
/// with a reason string.
struct Acknowledgement {
  bool success = false;
  Bytes result;       ///< app-defined, on success
  std::string error;  ///< reason, on failure

  [[nodiscard]] Bytes encode() const;
  void encode_into(Encoder& e) const;
  [[nodiscard]] std::size_t wire_size() const noexcept;
  [[nodiscard]] static Acknowledgement decode(ByteView wire);
  [[nodiscard]] Hash32 commitment() const;

  [[nodiscard]] static Acknowledgement ok(Bytes result = {});
  [[nodiscard]] static Acknowledgement fail(std::string reason);

  friend bool operator==(const Acknowledgement&, const Acknowledgement&) = default;
};

}  // namespace bmg::ibc
