// ICS-2: light clients.
//
// A light client lives on chain A and tracks chain B's consensus: it
// verifies B's headers and stores (height -> state root, timestamp)
// consensus states that packet proofs are checked against.  Concrete
// verifiers are provided by the chain libraries: the guest light
// client (quorum of guest validators, src/guest) and the
// Tendermint-like client (2/3 stake commit, src/counterparty).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "ibc/types.hpp"

namespace bmg::ibc {

/// What a light client remembers about one verified counterparty block.
struct ConsensusState {
  Hash32 state_root{};
  Timestamp timestamp = 0;
};

class LightClient {
 public:
  virtual ~LightClient() = default;

  /// Verifies an encoded counterparty header (+ attached signatures)
  /// and stores its consensus state.  Throws IbcError on invalid
  /// updates.
  virtual void update(ByteView header) = 0;

  [[nodiscard]] virtual std::optional<ConsensusState> consensus_at(Height h) const = 0;
  [[nodiscard]] virtual Height latest_height() const = 0;

  /// Identifier of the client algorithm ("guest", "tendermint", ...).
  [[nodiscard]] virtual std::string client_type() const = 0;

  /// Chain id this client tracks (for client-state commitments and
  /// self-client validation during connection handshakes).
  [[nodiscard]] virtual std::string tracked_chain_id() const { return {}; }
  /// Hash of the validator set this client currently trusts.
  [[nodiscard]] virtual Hash32 tracked_validator_set_hash() const { return {}; }
};

/// Trivial client for unit tests: accepts pre-seeded consensus states
/// without verification.
class TrustingLightClient final : public LightClient {
 public:
  void update(ByteView) override {
    throw IbcError("trusting client: use seed() in tests");
  }
  void seed(Height h, const ConsensusState& cs) {
    states_[h] = cs;
    latest_ = std::max(latest_, h);
  }
  [[nodiscard]] std::optional<ConsensusState> consensus_at(Height h) const override {
    const auto it = states_.find(h);
    if (it == states_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] Height latest_height() const override { return latest_; }
  [[nodiscard]] std::string client_type() const override { return "trusting"; }

 private:
  std::map<Height, ConsensusState> states_;
  Height latest_ = 0;
};

}  // namespace bmg::ibc
