#include "ibc/commitment.hpp"

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

namespace {
Bytes make_key(ByteView domain, KeyKind kind, std::uint64_t sequence) {
  const Hash32 tag = crypto::Sha256::digest(domain);
  Encoder e(8 + 1 + 8);
  e.raw(ByteView{tag.bytes.data(), 8});
  e.u8(static_cast<std::uint8_t>(kind));
  e.u64(sequence);
  return e.take();
}
}  // namespace

Bytes packet_key(KeyKind kind, const PortId& port, const ChannelId& channel,
                 std::uint64_t sequence) {
  Encoder domain;
  domain.str(port).str(channel);
  return make_key(domain.out(), kind, sequence);
}

Bytes channel_key(const PortId& port, const ChannelId& channel) {
  Encoder domain;
  domain.str(port).str(channel);
  return make_key(domain.out(), KeyKind::kChannel, 0);
}

Bytes connection_key(const ConnectionId& connection) {
  Encoder domain;
  domain.str(connection);
  return make_key(domain.out(), KeyKind::kConnection, 0);
}

Bytes client_key(const ClientId& client) {
  Encoder domain;
  domain.str(client);
  return make_key(domain.out(), KeyKind::kClientState, 0);
}

}  // namespace bmg::ibc
