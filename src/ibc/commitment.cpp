#include "ibc/commitment.hpp"

#include <cstring>
#include <unordered_map>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

namespace {

// Heterogeneous hashing so the tag cache can be probed with the
// ByteView of a stack-encoded domain — no owning key is materialised
// unless the probe misses (C++20 transparent lookup).
struct DomainHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(ByteView v) const noexcept {
    // FNV-1a; domains are short (two length-prefixed identifiers).
    std::size_t h = 14695981039346656037ull;
    for (const std::uint8_t b : v) h = (h ^ b) * 1099511628211ull;
    return h;
  }
  [[nodiscard]] std::size_t operator()(const Bytes& b) const noexcept {
    return (*this)(ByteView{b.data(), b.size()});
  }
};

struct DomainEq {
  using is_transparent = void;
  [[nodiscard]] bool operator()(ByteView a, ByteView b) const noexcept {
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
  }
  [[nodiscard]] bool operator()(const Bytes& a, ByteView b) const noexcept {
    return (*this)(ByteView{a.data(), a.size()}, b);
  }
  [[nodiscard]] bool operator()(ByteView a, const Bytes& b) const noexcept {
    return (*this)(a, ByteView{b.data(), b.size()});
  }
  [[nodiscard]] bool operator()(const Bytes& a, const Bytes& b) const noexcept {
    return (*this)(ByteView{a.data(), a.size()}, ByteView{b.data(), b.size()});
  }
};

/// sha256(domain), memoised.  The live set of (port, channel) and
/// client/connection identifiers is tiny and stable, so after warm-up
/// every key build skips the hash.  thread_local keeps fork-join
/// workers lock-free and the cache is pure (same domain -> same tag),
/// so threading cannot perturb results.
const Hash32& domain_tag(ByteView domain) {
  thread_local std::unordered_map<Bytes, Hash32, DomainHash, DomainEq> cache;
  const auto it = cache.find(domain);
  if (it != cache.end()) return it->second;
  const Hash32 tag = crypto::Sha256::digest(domain);
  return cache.emplace(Bytes(domain.begin(), domain.end()), tag).first->second;
}

CommitmentKey make_key(ByteView domain, KeyKind kind, std::uint64_t sequence) {
  return CommitmentKey(domain_tag(domain), kind, sequence);
}

}  // namespace

CommitmentKey::CommitmentKey(const Hash32& tag, KeyKind kind, std::uint64_t sequence) {
  std::memcpy(buf_.data(), tag.bytes.data(), 8);
  buf_[8] = static_cast<std::uint8_t>(kind);
  for (int i = 0; i < 8; ++i)
    buf_[9 + i] = static_cast<std::uint8_t>(sequence >> (56 - 8 * i));
}

CommitmentKey packet_key(KeyKind kind, const PortId& port, const ChannelId& channel,
                         std::uint64_t sequence) {
  std::array<std::uint8_t, 96> stack;
  Encoder domain{std::span<std::uint8_t>(stack)};
  domain.str(port).str(channel);
  return make_key(domain.out(), kind, sequence);
}

CommitmentKey channel_key(const PortId& port, const ChannelId& channel) {
  std::array<std::uint8_t, 96> stack;
  Encoder domain{std::span<std::uint8_t>(stack)};
  domain.str(port).str(channel);
  return make_key(domain.out(), KeyKind::kChannel, 0);
}

CommitmentKey connection_key(const ConnectionId& connection) {
  std::array<std::uint8_t, 96> stack;
  Encoder domain{std::span<std::uint8_t>(stack)};
  domain.str(connection);
  return make_key(domain.out(), KeyKind::kConnection, 0);
}

CommitmentKey client_key(const ClientId& client) {
  std::array<std::uint8_t, 96> stack;
  Encoder domain{std::span<std::uint8_t>(stack)};
  domain.str(client);
  return make_key(domain.out(), KeyKind::kClientState, 0);
}

}  // namespace bmg::ibc
