#include "ibc/module.hpp"

#include <array>
#include <span>

#include "crypto/sha256.hpp"

namespace bmg::ibc {

Bytes ClientStateCommitment::encode() const {
  Encoder e;
  e.str(chain_id).hash(validator_set_hash);
  return e.take();
}

ClientStateCommitment ClientStateCommitment::decode(ByteView wire) {
  Decoder d(wire);
  ClientStateCommitment c;
  c.chain_id = d.str();
  c.validator_set_hash = d.hash();
  d.expect_done();
  return c;
}

Hash32 ClientStateCommitment::commitment() const {
  return crypto::Sha256::digest(encode());
}

IbcModule::IbcModule(trie::SealableTrie& store, std::uint64_t ack_seal_lag)
    : store_(store), ack_seal_lag_(ack_seal_lag) {}

void IbcModule::set_self_identity(std::string chain_id,
                                  std::function<Hash32()> current_validator_set_hash) {
  self_chain_id_ = std::move(chain_id);
  self_validator_set_hash_ = std::move(current_validator_set_hash);
}

void IbcModule::store_client_state(const ClientId& id) {
  const LightClient& c = client(id);
  if (c.tracked_chain_id().empty()) return;  // test clients commit nothing
  const ClientStateCommitment state{c.tracked_chain_id(),
                                    c.tracked_validator_set_hash()};
  store_.set(client_key(id), state.commitment());
}

void IbcModule::validate_self_client(const ConnectionEnd& conn_for_proof,
                                     Height proof_height,
                                     const ClientId& counterparty_client,
                                     const std::optional<ClientStateCommitment>& claimed,
                                     const trie::Proof& proof) const {
  if (self_chain_id_.empty()) return;  // identity not declared: skip (tests)
  if (!claimed)
    throw IbcError("validate_self_client: counterparty client state required");
  if (claimed->chain_id != self_chain_id_)
    throw IbcError("validate_self_client: counterparty client tracks chain '" +
                   claimed->chain_id + "', not '" + self_chain_id_ + "'");
  if (self_validator_set_hash_ &&
      claimed->validator_set_hash != self_validator_set_hash_())
    throw IbcError("validate_self_client: counterparty client trusts a stale or "
                   "foreign validator set");
  verify_membership(conn_for_proof, proof_height, proof,
                    client_key(counterparty_client), claimed->commitment(),
                    "validate_self_client");
}

// --- clients --------------------------------------------------------------

ClientId IbcModule::add_client(std::unique_ptr<LightClient> client) {
  const ClientId id =
      client->client_type() + "-" + std::to_string(next_client_++);
  clients_[id] = std::move(client);
  store_client_state(id);
  return id;
}

LightClient& IbcModule::client(const ClientId& id) {
  const auto it = clients_.find(id);
  if (it == clients_.end()) throw IbcError("unknown client: " + id);
  return *it->second;
}

const LightClient& IbcModule::client(const ClientId& id) const {
  const auto it = clients_.find(id);
  if (it == clients_.end()) throw IbcError("unknown client: " + id);
  return *it->second;
}

void IbcModule::update_client(const ClientId& id, ByteView header) {
  client(id).update(header);
  // Validator-set rotations change the committed client state.
  store_client_state(id);
}

// --- proof plumbing ---------------------------------------------------------

ConsensusState IbcModule::consensus_for(const ConnectionEnd& conn, Height proof_height,
                                        const char* what) const {
  const auto cs = client(conn.client_id).consensus_at(proof_height);
  if (!cs)
    throw IbcError(std::string(what) + ": no consensus state at height " +
                   std::to_string(proof_height));
  return *cs;
}

void IbcModule::verify_membership(const ConnectionEnd& conn, Height proof_height,
                                  const trie::Proof& proof, ByteView key,
                                  const Hash32& value, const char* what) const {
  const ConsensusState cs = consensus_for(conn, proof_height, what);
  const trie::VerifyOutcome out = trie::verify_proof(cs.state_root, key, proof);
  if (out.kind != trie::VerifyOutcome::Kind::kFound)
    throw IbcError(std::string(what) + ": membership proof failed");
  if (out.value != value)
    throw IbcError(std::string(what) + ": proven value mismatch");
}

void IbcModule::verify_non_membership(const ConnectionEnd& conn, Height proof_height,
                                      const trie::Proof& proof, ByteView key,
                                      const char* what) const {
  const ConsensusState cs = consensus_for(conn, proof_height, what);
  const trie::VerifyOutcome out = trie::verify_proof(cs.state_root, key, proof);
  if (out.kind != trie::VerifyOutcome::Kind::kAbsent)
    throw IbcError(std::string(what) + ": non-membership proof failed");
}

void IbcModule::store_connection(const ConnectionId& id, const ConnectionEnd& end) {
  connections_[id] = end;
  store_.set(connection_key(id), end.commitment());
}

void IbcModule::store_channel(const PortId& port, const ChannelId& id,
                              const ChannelEnd& end) {
  auto it = channels_.find({port, id});
  if (it == channels_.end()) {
    ChannelRecord rec;
    rec.acks = SeqTracker(ack_seal_lag_);
    rec.end = end;
    channels_.emplace(std::make_pair(port, id), std::move(rec));
  } else {
    it->second.end = end;
  }
  store_.set(channel_key(port, id), end.commitment());

  // Ordered channels commit their next-sequence-recv from the moment
  // they open, so even the first packet's timeout is provable.
  if (end.order == ChannelOrder::kOrdered && end.state == ChannelState::kOpen) {
    Encoder nr;
    nr.u64(channels_.at({port, id}).next_recv);
    store_.set(packet_key(KeyKind::kNextSequenceRecv, port, id, 0),
               crypto::Sha256::digest(nr.out()));
  }
}

// --- connection handshake ----------------------------------------------------

ConnectionId IbcModule::conn_open_init(const ClientId& client_id,
                                       const ClientId& counterparty_client) {
  (void)client(client_id);  // must exist
  const ConnectionId id = "connection-" + std::to_string(next_connection_++);
  ConnectionEnd end;
  end.state = ConnectionState::kInit;
  end.client_id = client_id;
  end.counterparty_client_id = counterparty_client;
  store_connection(id, end);
  return id;
}

ConnectionId IbcModule::conn_open_try(const ClientId& client_id,
                                      const ClientId& counterparty_client,
                                      const ConnectionId& counterparty_connection,
                                      const ConnectionEnd& counterparty_end,
                                      Height proof_height, const trie::Proof& proof,
                                      const std::optional<ClientStateCommitment>&
                                          counterparty_client_state,
                                      const trie::Proof& client_state_proof) {
  (void)client(client_id);
  if (counterparty_end.state != ConnectionState::kInit)
    throw IbcError("conn_open_try: counterparty end not in INIT");

  ConnectionEnd self;
  self.state = ConnectionState::kTryOpen;
  self.client_id = client_id;
  self.counterparty_connection = counterparty_connection;
  self.counterparty_client_id = counterparty_client;

  verify_membership(self, proof_height, proof, connection_key(counterparty_connection),
                    counterparty_end.commitment(), "conn_open_try");
  validate_self_client(self, proof_height, counterparty_end.client_id,
                       counterparty_client_state, client_state_proof);

  const ConnectionId id = "connection-" + std::to_string(next_connection_++);
  store_connection(id, self);
  return id;
}

void IbcModule::conn_open_ack(const ConnectionId& connection_id,
                              const ConnectionId& counterparty_connection,
                              const ConnectionEnd& counterparty_end, Height proof_height,
                              const trie::Proof& proof,
                              const std::optional<ClientStateCommitment>&
                                  counterparty_client_state,
                              const trie::Proof& client_state_proof) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) throw IbcError("conn_open_ack: unknown connection");
  ConnectionEnd self = it->second;
  if (self.state != ConnectionState::kInit)
    throw IbcError("conn_open_ack: connection not in INIT");
  if (counterparty_end.state != ConnectionState::kTryOpen)
    throw IbcError("conn_open_ack: counterparty end not in TRYOPEN");
  if (counterparty_end.counterparty_connection != connection_id)
    throw IbcError("conn_open_ack: counterparty end names a different connection");

  verify_membership(self, proof_height, proof, connection_key(counterparty_connection),
                    counterparty_end.commitment(), "conn_open_ack");
  validate_self_client(self, proof_height, counterparty_end.client_id,
                       counterparty_client_state, client_state_proof);

  self.state = ConnectionState::kOpen;
  self.counterparty_connection = counterparty_connection;
  store_connection(connection_id, self);
}

void IbcModule::conn_open_confirm(const ConnectionId& connection_id,
                                  const ConnectionEnd& counterparty_end,
                                  Height proof_height, const trie::Proof& proof) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) throw IbcError("conn_open_confirm: unknown connection");
  ConnectionEnd self = it->second;
  if (self.state != ConnectionState::kTryOpen)
    throw IbcError("conn_open_confirm: connection not in TRYOPEN");
  if (counterparty_end.state != ConnectionState::kOpen)
    throw IbcError("conn_open_confirm: counterparty end not OPEN");

  verify_membership(self, proof_height, proof,
                    connection_key(self.counterparty_connection),
                    counterparty_end.commitment(), "conn_open_confirm");

  self.state = ConnectionState::kOpen;
  store_connection(connection_id, self);
}

// --- channel handshake --------------------------------------------------------

ChannelId IbcModule::chan_open_init(const PortId& port, const ConnectionId& connection_id,
                                    const PortId& counterparty_port,
                                    ChannelOrder order) {
  const ConnectionEnd& conn = connection(connection_id);
  if (conn.state != ConnectionState::kOpen)
    throw IbcError("chan_open_init: connection not open");
  const ChannelId id = "channel-" + std::to_string(next_channel_++);
  ChannelEnd end;
  end.state = ChannelState::kInit;
  end.order = order;
  end.connection = connection_id;
  end.counterparty_port = counterparty_port;
  store_channel(port, id, end);
  return id;
}

ChannelId IbcModule::chan_open_try(const PortId& port, const ConnectionId& connection_id,
                                   const PortId& counterparty_port,
                                   const ChannelId& counterparty_channel,
                                   const ChannelEnd& counterparty_end,
                                   Height proof_height, const trie::Proof& proof,
                                   ChannelOrder order) {
  const ConnectionEnd& conn = connection(connection_id);
  if (conn.state != ConnectionState::kOpen)
    throw IbcError("chan_open_try: connection not open");
  if (counterparty_end.state != ChannelState::kInit)
    throw IbcError("chan_open_try: counterparty end not in INIT");
  if (counterparty_end.order != order)
    throw IbcError("chan_open_try: channel ordering mismatch");
  if (counterparty_end.counterparty_port != port)
    throw IbcError("chan_open_try: counterparty end names a different port");

  verify_membership(conn, proof_height, proof,
                    channel_key(counterparty_port, counterparty_channel),
                    counterparty_end.commitment(), "chan_open_try");

  const ChannelId id = "channel-" + std::to_string(next_channel_++);
  ChannelEnd end;
  end.state = ChannelState::kTryOpen;
  end.order = order;
  end.connection = connection_id;
  end.counterparty_port = counterparty_port;
  end.counterparty_channel = counterparty_channel;
  store_channel(port, id, end);
  return id;
}

void IbcModule::chan_open_ack(const PortId& port, const ChannelId& channel_id,
                              const ChannelId& counterparty_channel,
                              const ChannelEnd& counterparty_end, Height proof_height,
                              const trie::Proof& proof) {
  ChannelRecord& rec = channel_record(port, channel_id);
  if (rec.end.state != ChannelState::kInit)
    throw IbcError("chan_open_ack: channel not in INIT");
  if (counterparty_end.state != ChannelState::kTryOpen)
    throw IbcError("chan_open_ack: counterparty end not in TRYOPEN");
  if (counterparty_end.counterparty_channel != channel_id ||
      counterparty_end.counterparty_port != port)
    throw IbcError("chan_open_ack: counterparty end names a different channel");

  const ConnectionEnd& conn = connection(rec.end.connection);
  verify_membership(conn, proof_height, proof,
                    channel_key(rec.end.counterparty_port, counterparty_channel),
                    counterparty_end.commitment(), "chan_open_ack");

  ChannelEnd end = rec.end;
  end.state = ChannelState::kOpen;
  end.counterparty_channel = counterparty_channel;
  store_channel(port, channel_id, end);
}

void IbcModule::chan_open_confirm(const PortId& port, const ChannelId& channel_id,
                                  const ChannelEnd& counterparty_end, Height proof_height,
                                  const trie::Proof& proof) {
  ChannelRecord& rec = channel_record(port, channel_id);
  if (rec.end.state != ChannelState::kTryOpen)
    throw IbcError("chan_open_confirm: channel not in TRYOPEN");
  if (counterparty_end.state != ChannelState::kOpen)
    throw IbcError("chan_open_confirm: counterparty end not OPEN");

  const ConnectionEnd& conn = connection(rec.end.connection);
  verify_membership(conn, proof_height, proof,
                    channel_key(rec.end.counterparty_port, rec.end.counterparty_channel),
                    counterparty_end.commitment(), "chan_open_confirm");

  ChannelEnd end = rec.end;
  end.state = ChannelState::kOpen;
  store_channel(port, channel_id, end);
}

void IbcModule::chan_close_init(const PortId& port, const ChannelId& channel_id) {
  ChannelRecord& rec = channel_record(port, channel_id);
  if (rec.end.state != ChannelState::kOpen)
    throw IbcError("chan_close_init: channel not open");
  ChannelEnd end = rec.end;
  end.state = ChannelState::kClosed;
  store_channel(port, channel_id, end);
}

void IbcModule::chan_close_confirm(const PortId& port, const ChannelId& channel_id,
                                   const ChannelEnd& counterparty_end,
                                   Height proof_height, const trie::Proof& proof) {
  ChannelRecord& rec = channel_record(port, channel_id);
  if (rec.end.state != ChannelState::kOpen)
    throw IbcError("chan_close_confirm: channel not open");
  if (counterparty_end.state != ChannelState::kClosed)
    throw IbcError("chan_close_confirm: counterparty end not CLOSED");
  const ConnectionEnd& conn = connection(rec.end.connection);
  verify_membership(conn, proof_height, proof,
                    channel_key(rec.end.counterparty_port, rec.end.counterparty_channel),
                    counterparty_end.commitment(), "chan_close_confirm");
  ChannelEnd end = rec.end;
  end.state = ChannelState::kClosed;
  store_channel(port, channel_id, end);
}

// --- packets -----------------------------------------------------------------

Packet IbcModule::send_packet(const PortId& port, const ChannelId& channel_id,
                              Bytes data, Height timeout_height,
                              Timestamp timeout_timestamp) {
  ChannelRecord& rec = channel_record(port, channel_id);
  if (rec.end.state != ChannelState::kOpen)
    throw IbcError("send_packet: channel not open");
  if (timeout_height == 0 && timeout_timestamp == 0)
    throw IbcError("send_packet: a timeout must be set");

  Packet packet;
  packet.sequence = rec.next_send++;
  packet.source_port = port;
  packet.source_channel = channel_id;
  packet.dest_port = rec.end.counterparty_port;
  packet.dest_channel = rec.end.counterparty_channel;
  packet.data = std::move(data);
  packet.timeout_height = timeout_height;
  packet.timeout_timestamp = timeout_timestamp;

  store_.set(packet_key(KeyKind::kPacketCommitment, port, channel_id, packet.sequence),
             packet.commitment());
  // Keep the body queryable until the commitment resolves — the replay
  // source for any relayer (re)building its queues from chain state.
  sent_packets_.emplace(std::make_tuple(port, channel_id, packet.sequence), packet);
  if (packet_listener_) packet_listener_(packet);
  return packet;
}

Acknowledgement IbcModule::recv_packet(const Packet& packet, Height proof_height,
                                       const trie::Proof& proof, Height self_height,
                                       Timestamp self_time) {
  ChannelRecord& rec = channel_record(packet.dest_port, packet.dest_channel);
  if (rec.end.state != ChannelState::kOpen)
    throw IbcError("recv_packet: channel not open");
  if (rec.end.counterparty_port != packet.source_port ||
      rec.end.counterparty_channel != packet.source_channel)
    throw IbcError("recv_packet: packet route does not match channel");

  // Timeout enforcement on the receiving chain.
  if (packet.timeout_height != 0 && self_height >= packet.timeout_height)
    throw IbcError("recv_packet: packet timed out (height)");
  if (packet.timeout_timestamp != 0 && self_time >= packet.timeout_timestamp)
    throw IbcError("recv_packet: packet timed out (timestamp)");

  const bool ordered = rec.end.order == ChannelOrder::kOrdered;

  // Double-delivery guard.  Unordered channels use the sealable-trie
  // receipt mechanism of §III-A (a sealed receipt is just as blocking
  // as a live one); ordered channels enforce strict sequencing.
  const auto receipt_key = packet_key(KeyKind::kPacketReceipt, packet.dest_port,
                                       packet.dest_channel, packet.sequence);
  if (ordered) {
    if (packet.sequence != rec.next_recv)
      throw IbcError("recv_packet: out-of-order delivery on ordered channel (want " +
                     std::to_string(rec.next_recv) + ", got " +
                     std::to_string(packet.sequence) + ")");
  } else {
    if (store_.get(receipt_key) != trie::SealableTrie::Lookup::kAbsent)
      throw IbcError("recv_packet: packet already delivered");
  }

  // Verify the sender's commitment.
  const ConnectionEnd& conn = connection(rec.end.connection);
  verify_membership(conn, proof_height, proof,
                    packet_key(KeyKind::kPacketCommitment, packet.source_port,
                               packet.source_channel, packet.sequence),
                    packet.compute_commitment(), "recv_packet");

  // Deliver to the application; app failures become error acks.
  Acknowledgement ack;
  try {
    ack = app_for(packet.dest_port).on_recv_packet(packet);
  } catch (const std::exception& e) {
    ack = Acknowledgement::fail(e.what());
  }

  // Record the delivery.  Ordered channels commit the bumped
  // next-sequence-recv (updated in place, nothing to seal); unordered
  // channels write a receipt and seal behind the watermark.
  if (ordered) {
    ++rec.next_recv;
    std::array<std::uint8_t, 8> nr_buf;
    Encoder nr{std::span<std::uint8_t>(nr_buf)};
    nr.u64(rec.next_recv);
    store_.set(packet_key(KeyKind::kNextSequenceRecv, packet.dest_port,
                          packet.dest_channel, 0),
               crypto::Sha256::digest(nr.out()));
  } else {
    store_.set(receipt_key, crypto::Sha256::digest(bytes_of("receipt")));
  }
  store_.set(packet_key(KeyKind::kPacketAck, packet.dest_port, packet.dest_channel,
                        packet.sequence),
             ack.commitment());
  ack_log_[std::make_tuple(packet.dest_port, packet.dest_channel, packet.sequence)] =
      ack;
  rec.receipts.mark(packet.sequence);
  if (!ordered) {
    for (const std::uint64_t seq : rec.receipts.drain_sealable())
      store_.seal(packet_key(KeyKind::kPacketReceipt, packet.dest_port,
                             packet.dest_channel, seq));
  }
  // Acks seal on the same watermark but lagged, so relayers can still
  // prove recently-written acknowledgements to the counterparty.
  rec.acks.mark(packet.sequence);
  for (const std::uint64_t seq : rec.acks.drain_sealable())
    store_.seal(
        packet_key(KeyKind::kPacketAck, packet.dest_port, packet.dest_channel, seq));
  return ack;
}

void IbcModule::seal_resolved(const PortId& port, const ChannelId& id,
                              ChannelRecord& rec) {
  for (const std::uint64_t seq : rec.resolved_commitments.drain_sealable())
    store_.seal(packet_key(KeyKind::kPacketCommitment, port, id, seq));
}

void IbcModule::acknowledge_packet(const Packet& packet, const Acknowledgement& ack,
                                   Height proof_height, const trie::Proof& proof) {
  ChannelRecord& rec = channel_record(packet.source_port, packet.source_channel);
  if (rec.end.state != ChannelState::kOpen)
    throw IbcError("acknowledge_packet: channel not open");

  // The commitment must still be pending locally.
  const auto ckey = packet_key(KeyKind::kPacketCommitment, packet.source_port,
                                packet.source_channel, packet.sequence);
  Hash32 committed;
  if (store_.get(ckey, &committed) != trie::SealableTrie::Lookup::kFound)
    throw IbcError("acknowledge_packet: no pending commitment");
  if (committed != packet.compute_commitment())
    throw IbcError("acknowledge_packet: packet does not match commitment");
  if (rec.resolved_commitments.is_marked(packet.sequence))
    throw IbcError("acknowledge_packet: already resolved");

  const ConnectionEnd& conn = connection(rec.end.connection);
  verify_membership(conn, proof_height, proof,
                    packet_key(KeyKind::kPacketAck, packet.dest_port,
                               packet.dest_channel, packet.sequence),
                    ack.commitment(), "acknowledge_packet");

  rec.resolved_commitments.mark(packet.sequence);
  seal_resolved(packet.source_port, packet.source_channel, rec);
  sent_packets_.erase(
      std::make_tuple(packet.source_port, packet.source_channel, packet.sequence));
  app_for(packet.source_port).on_acknowledge(packet, ack);
}

void IbcModule::timeout_packet(const Packet& packet, Height proof_height,
                               const trie::Proof& receipt_absence_proof) {
  ChannelRecord& rec = channel_record(packet.source_port, packet.source_channel);
  if (rec.end.order == ChannelOrder::kOrdered)
    throw IbcError("timeout_packet: use timeout_packet_ordered for ordered channels");

  const auto ckey = packet_key(KeyKind::kPacketCommitment, packet.source_port,
                                packet.source_channel, packet.sequence);
  Hash32 committed;
  if (store_.get(ckey, &committed) != trie::SealableTrie::Lookup::kFound)
    throw IbcError("timeout_packet: no pending commitment");
  if (committed != packet.compute_commitment())
    throw IbcError("timeout_packet: packet does not match commitment");
  if (rec.resolved_commitments.is_marked(packet.sequence))
    throw IbcError("timeout_packet: already resolved");

  const ConnectionEnd& conn = connection(rec.end.connection);
  const ConsensusState cs = consensus_for(conn, proof_height, "timeout_packet");
  const bool height_passed =
      packet.timeout_height != 0 && proof_height >= packet.timeout_height;
  const bool time_passed =
      packet.timeout_timestamp != 0 && cs.timestamp >= packet.timeout_timestamp;
  if (!height_passed && !time_passed)
    throw IbcError("timeout_packet: timeout has not passed at proof height");

  verify_non_membership(conn, proof_height, receipt_absence_proof,
                        packet_key(KeyKind::kPacketReceipt, packet.dest_port,
                                   packet.dest_channel, packet.sequence),
                        "timeout_packet");

  rec.resolved_commitments.mark(packet.sequence);
  seal_resolved(packet.source_port, packet.source_channel, rec);
  sent_packets_.erase(
      std::make_tuple(packet.source_port, packet.source_channel, packet.sequence));
  app_for(packet.source_port).on_timeout(packet);
}

void IbcModule::timeout_packet_ordered(const Packet& packet,
                                       std::uint64_t claimed_next_recv,
                                       Height proof_height, const trie::Proof& proof) {
  ChannelRecord& rec = channel_record(packet.source_port, packet.source_channel);
  if (rec.end.order != ChannelOrder::kOrdered)
    throw IbcError("timeout_packet_ordered: channel is unordered");

  const auto ckey = packet_key(KeyKind::kPacketCommitment, packet.source_port,
                                packet.source_channel, packet.sequence);
  Hash32 committed;
  if (store_.get(ckey, &committed) != trie::SealableTrie::Lookup::kFound)
    throw IbcError("timeout_packet_ordered: no pending commitment");
  if (committed != packet.compute_commitment())
    throw IbcError("timeout_packet_ordered: packet does not match commitment");
  if (rec.resolved_commitments.is_marked(packet.sequence))
    throw IbcError("timeout_packet_ordered: already resolved");

  const ConnectionEnd& conn = connection(rec.end.connection);
  const ConsensusState cs = consensus_for(conn, proof_height, "timeout_packet_ordered");
  const bool height_passed =
      packet.timeout_height != 0 && proof_height >= packet.timeout_height;
  const bool time_passed =
      packet.timeout_timestamp != 0 && cs.timestamp >= packet.timeout_timestamp;
  if (!height_passed && !time_passed)
    throw IbcError("timeout_packet_ordered: timeout has not passed at proof height");
  if (claimed_next_recv > packet.sequence)
    throw IbcError("timeout_packet_ordered: packet was already delivered");

  // The counterparty commits H(next_recv) at a fixed key; verify the
  // claimed value against it.
  std::array<std::uint8_t, 8> nr_buf;
  Encoder nr{std::span<std::uint8_t>(nr_buf)};
  nr.u64(claimed_next_recv);
  verify_membership(conn, proof_height, proof,
                    packet_key(KeyKind::kNextSequenceRecv, packet.dest_port,
                               packet.dest_channel, 0),
                    crypto::Sha256::digest(nr.out()), "timeout_packet_ordered");

  rec.resolved_commitments.mark(packet.sequence);
  seal_resolved(packet.source_port, packet.source_channel, rec);
  sent_packets_.erase(
      std::make_tuple(packet.source_port, packet.source_channel, packet.sequence));
  // ICS-4: a timed-out ordered channel closes.
  ChannelEnd end = rec.end;
  end.state = ChannelState::kClosed;
  store_channel(packet.source_port, packet.source_channel, end);
  app_for(packet.source_port).on_timeout(packet);
}

std::uint64_t IbcModule::next_recv_sequence(const PortId& port,
                                            const ChannelId& id) const {
  return channel_record(port, id).next_recv;
}

// --- apps / lookup -------------------------------------------------------------

void IbcModule::bind_port(const PortId& port, IbcApp* app) {
  if (app == nullptr) throw IbcError("bind_port: null app");
  apps_[port] = app;
}

IbcApp& IbcModule::app_for(const PortId& port) {
  const auto it = apps_.find(port);
  if (it == apps_.end()) throw IbcError("no app bound to port " + port);
  return *it->second;
}

const ConnectionEnd& IbcModule::connection(const ConnectionId& id) const {
  const auto it = connections_.find(id);
  if (it == connections_.end()) throw IbcError("unknown connection: " + id);
  return it->second;
}

IbcModule::ChannelRecord& IbcModule::channel_record(const PortId& port,
                                                    const ChannelId& id) {
  const auto it = channels_.find({port, id});
  if (it == channels_.end()) throw IbcError("unknown channel: " + port + "/" + id);
  return it->second;
}

const IbcModule::ChannelRecord& IbcModule::channel_record(const PortId& port,
                                                          const ChannelId& id) const {
  const auto it = channels_.find({port, id});
  if (it == channels_.end()) throw IbcError("unknown channel: " + port + "/" + id);
  return it->second;
}

const ChannelEnd& IbcModule::channel(const PortId& port, const ChannelId& id) const {
  return channel_record(port, id).end;
}

std::uint64_t IbcModule::next_send_sequence(const PortId& port,
                                            const ChannelId& id) const {
  return channel_record(port, id).next_send;
}

bool IbcModule::packet_received(const PortId& port, const ChannelId& channel,
                                std::uint64_t seq) const {
  return store_.get(packet_key(KeyKind::kPacketReceipt, port, channel, seq)) !=
         trie::SealableTrie::Lookup::kAbsent;
}

bool IbcModule::packet_pending(const PortId& port, const ChannelId& channel,
                               std::uint64_t seq) const {
  const auto& rec = channel_record(port, channel);
  if (rec.resolved_commitments.is_marked(seq)) return false;
  return store_.get(packet_key(KeyKind::kPacketCommitment, port, channel, seq)) ==
         trie::SealableTrie::Lookup::kFound;
}

std::vector<std::pair<PortId, ChannelId>> IbcModule::channels() const {
  std::vector<std::pair<PortId, ChannelId>> out;
  out.reserve(channels_.size());
  for (const auto& [key, rec] : channels_) out.push_back(key);
  return out;
}

std::vector<std::uint64_t> IbcModule::pending_send_sequences(
    const PortId& port, const ChannelId& channel) const {
  // sent_packets_ holds exactly the unresolved outgoing packets (pruned
  // on ack / timeout), so the pending set is a key-range scan — no walk
  // over 1..next_send.
  std::vector<std::uint64_t> out;
  auto it = sent_packets_.lower_bound(std::make_tuple(port, channel, std::uint64_t{0}));
  for (; it != sent_packets_.end(); ++it) {
    const auto& [p, c, seq] = it->first;
    if (p != port || c != channel) break;
    out.push_back(seq);
  }
  return out;
}

const Packet* IbcModule::sent_packet(const PortId& port, const ChannelId& channel,
                                     std::uint64_t seq) const {
  const auto it = sent_packets_.find(std::make_tuple(port, channel, seq));
  return it == sent_packets_.end() ? nullptr : &it->second;
}

std::optional<Acknowledgement> IbcModule::ack_for(const PortId& port,
                                                  const ChannelId& channel,
                                                  std::uint64_t seq) const {
  const auto it = ack_log_.find(std::make_tuple(port, channel, seq));
  if (it == ack_log_.end()) return std::nullopt;
  return it->second;
}

IbcModule::ChannelSequences IbcModule::sequences(const PortId& port,
                                                 const ChannelId& channel) const {
  const ChannelRecord& rec = channel_record(port, channel);
  ChannelSequences s;
  s.next_send = rec.next_send;
  s.next_recv = rec.next_recv;
  s.resolved_watermark = rec.resolved_commitments.watermark();
  s.receipts_watermark = rec.receipts.watermark();
  s.acks_watermark = rec.acks.watermark();
  return s;
}

}  // namespace bmg::ibc
