#include "ibc/bank.hpp"

namespace bmg::ibc {

void Bank::mint(const Account& to, const Denom& denom, std::uint64_t amount) {
  balances_[{to, denom}] += amount;
  supply_[denom] += amount;
}

void Bank::burn(const Account& from, const Denom& denom, std::uint64_t amount) {
  auto& bal = balances_[{from, denom}];
  if (bal < amount) throw IbcError("bank: insufficient balance to burn");
  bal -= amount;
  supply_[denom] -= amount;
}

void Bank::transfer(const Account& from, const Account& to, const Denom& denom,
                    std::uint64_t amount) {
  auto& src = balances_[{from, denom}];
  if (src < amount) throw IbcError("bank: insufficient balance");
  src -= amount;
  balances_[{to, denom}] += amount;
}

std::uint64_t Bank::balance(const Account& who, const Denom& denom) const {
  const auto it = balances_.find({who, denom});
  return it == balances_.end() ? 0 : it->second;
}

std::uint64_t Bank::total_supply(const Denom& denom) const {
  const auto it = supply_.find(denom);
  return it == supply_.end() ? 0 : it->second;
}

}  // namespace bmg::ibc
