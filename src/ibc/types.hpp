// Core IBC identifier and height types (ICS-24 style).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace bmg::ibc {

using ClientId = std::string;      ///< e.g. "07-guest-0"
using ConnectionId = std::string;  ///< e.g. "connection-0"
using ChannelId = std::string;     ///< e.g. "channel-3"
using PortId = std::string;        ///< e.g. "transfer"

/// Block height on a chain (single-revision simplification of ICS-2).
using Height = std::uint64_t;

/// Wall-clock timestamp in simulation seconds.
using Timestamp = double;

class IbcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace bmg::ibc
