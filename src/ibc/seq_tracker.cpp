#include "ibc/seq_tracker.hpp"

namespace bmg::ibc {

bool SeqTracker::mark(std::uint64_t seq) {
  if (seq == 0) return false;
  if (seq <= watermark_ || pending_.count(seq) > 0) return false;
  if (seq == watermark_ + 1) {
    ++watermark_;
    // Absorb any pending sequences that are now contiguous.
    auto it = pending_.begin();
    while (it != pending_.end() && *it == watermark_ + 1) {
      ++watermark_;
      it = pending_.erase(it);
    }
  } else {
    pending_.insert(seq);
  }
  return true;
}

bool SeqTracker::is_marked(std::uint64_t seq) const {
  return seq != 0 && (seq <= watermark_ || pending_.count(seq) > 0);
}

std::vector<std::uint64_t> SeqTracker::drain_sealable() {
  std::vector<std::uint64_t> out;
  const std::uint64_t margin = 1 + lag_;
  if (watermark_ <= margin) return out;
  const std::uint64_t limit = watermark_ - margin;
  while (sealed_upto_ < limit) out.push_back(++sealed_upto_);
  return out;
}

}  // namespace bmg::ibc
