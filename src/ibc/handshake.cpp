#include "ibc/handshake.hpp"

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace bmg::ibc {

Bytes ConnectionEnd::encode() const {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(state))
      .str(client_id)
      .str(counterparty_connection)
      .str(counterparty_client_id);
  return e.take();
}

ConnectionEnd ConnectionEnd::decode(ByteView wire) {
  Decoder d(wire);
  ConnectionEnd c;
  c.state = static_cast<ConnectionState>(d.u8());
  c.client_id = d.str();
  c.counterparty_connection = d.str();
  c.counterparty_client_id = d.str();
  d.expect_done();
  return c;
}

Hash32 ConnectionEnd::commitment() const { return crypto::Sha256::digest(encode()); }

Bytes ChannelEnd::encode() const {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(state))
      .u8(static_cast<std::uint8_t>(order))
      .str(connection)
      .str(counterparty_port)
      .str(counterparty_channel);
  return e.take();
}

ChannelEnd ChannelEnd::decode(ByteView wire) {
  Decoder d(wire);
  ChannelEnd c;
  c.state = static_cast<ChannelState>(d.u8());
  c.order = static_cast<ChannelOrder>(d.u8());
  c.connection = d.str();
  c.counterparty_port = d.str();
  c.counterparty_channel = d.str();
  d.expect_done();
  return c;
}

Hash32 ChannelEnd::commitment() const { return crypto::Sha256::digest(encode()); }

}  // namespace bmg::ibc
