// Stake-weighted quorum headers and the light client that verifies
// them (ICS-2 concrete client).
//
// Both chains in the reproduction finalise blocks with a quorum of
// stake-weighted validator signatures: the guest blockchain via its
// Proof-of-Stake Sign procedure (paper §III-B), and the Tendermint-
// like counterparty via its per-block commit.  A single header format
// and light client covers both — mirroring the paper's observation
// (§VI-D) that the guest chain's simple light client could even
// replace heavier host clients.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keys.hpp"
#include "ibc/client.hpp"
#include "ibc/types.hpp"

namespace bmg {
class Encoder;
}

namespace bmg::ibc {

struct SignedQuorumHeaderView;

struct ValidatorInfo {
  crypto::PublicKey key;
  std::uint64_t stake = 0;

  friend bool operator==(const ValidatorInfo&, const ValidatorInfo&) = default;
};

/// The stake-weighted validator set of one chain.
///
/// Encapsulated so the hot light-client path can cache what it keeps
/// re-deriving: the set hash (one SHA-256 of the full encoding), the
/// total stake, and a key→stake index.  All three are built lazily on
/// first use and invalidated by the mutators, so a set that is built
/// once and read per-header (the common case) pays each cost once.
class ValidatorSet {
 public:
  ValidatorSet() = default;
  explicit ValidatorSet(std::vector<ValidatorInfo> validators)
      : validators_(std::move(validators)) {}

  [[nodiscard]] const std::vector<ValidatorInfo>& entries() const noexcept {
    return validators_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return validators_.size(); }
  [[nodiscard]] bool empty() const noexcept { return validators_.empty(); }

  /// Appends one validator.  Invalidates the caches.
  void add(crypto::PublicKey key, std::uint64_t stake);
  /// Replaces the whole set.  Invalidates the caches.
  void assign(std::vector<ValidatorInfo> validators);

  [[nodiscard]] std::uint64_t total_stake() const;
  /// Stake strictly required to finalise: > 2/3 of total.
  [[nodiscard]] std::uint64_t quorum_stake() const;
  [[nodiscard]] std::optional<std::uint64_t> stake_of(const crypto::PublicKey& key) const;
  [[nodiscard]] bool contains(const crypto::PublicKey& key) const;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Encoder& e) const;
  [[nodiscard]] static ValidatorSet decode(ByteView wire);
  [[nodiscard]] const Hash32& hash() const;
  /// Serialized size, computed arithmetically (no encode).
  [[nodiscard]] std::size_t byte_size() const noexcept;

  friend bool operator==(const ValidatorSet& a, const ValidatorSet& b) {
    return a.validators_ == b.validators_;
  }

 private:
  void invalidate() noexcept;

  std::vector<ValidatorInfo> validators_;
  mutable std::optional<Hash32> hash_;
  mutable std::optional<std::uint64_t> total_stake_;
  mutable std::optional<
      std::unordered_map<crypto::PublicKey, std::uint64_t, crypto::PublicKeyHasher>>
      index_;
};

/// A block header as seen by light clients.
struct QuorumHeader {
  std::string chain_id;
  Height height = 0;
  Timestamp timestamp = 0;
  Hash32 state_root{};
  /// Hash of the validator set that signs this header.
  Hash32 validator_set_hash{};
  /// Chain-specific extra data folded into the signing digest (the
  /// guest chain puts prev-block hash and host height here).
  Bytes extra;

  [[nodiscard]] Bytes encode() const;
  /// Appends the wire encoding to `e` (exactly `byte_size()` bytes).
  void encode_into(Encoder& e) const;
  [[nodiscard]] static QuorumHeader decode(ByteView wire);
  /// What validators sign.
  [[nodiscard]] Hash32 signing_digest() const;
  /// Serialized size, computed arithmetically (no encode).
  [[nodiscard]] std::size_t byte_size() const noexcept;

  friend bool operator==(const QuorumHeader&, const QuorumHeader&) = default;
};

/// A header plus the signatures that finalise it, and (on epoch
/// boundaries) the full next validator set.
struct SignedQuorumHeader {
  QuorumHeader header;
  std::vector<std::pair<crypto::PublicKey, crypto::Signature>> signatures;
  /// Present when the validator set rotates at this header.
  std::optional<ValidatorSet> next_validators;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Encoder& e) const;
  [[nodiscard]] static SignedQuorumHeader decode(ByteView wire);
  /// Serialized size — what a relayer must ship on-chain.  Computed
  /// arithmetically from the wire format; never allocates.
  [[nodiscard]] std::size_t byte_size() const noexcept;
  /// `header.signing_digest()`, hashed once and cached.  Headers are
  /// value objects — built or decoded, then only read — so the cache
  /// never sees `header` change.  Mutating `header` after the first
  /// call here is a bug.
  [[nodiscard]] const Hash32& signing_digest() const;

 private:
  mutable std::optional<Hash32> digest_;
};

/// Light client verifying quorum headers of one counterparty chain.
class QuorumLightClient final : public LightClient {
 public:
  QuorumLightClient(std::string chain_id, ValidatorSet genesis_validators);

  /// One-shot verification (used where compute is unconstrained, e.g.
  /// the counterparty chain verifying guest headers).  Runs entirely
  /// over a zero-copy view of `header`: the signing digest is hashed
  /// straight from the borrowed header blob and signatures are
  /// verified in place; the only owning decode is the next validator
  /// set, materialised after full verification on epoch rotation.
  void update(ByteView header) override;

  /// Applies a header whose quorum signatures were *already verified
  /// externally* — the guest contract path, where signatures go
  /// through the host's Ed25519 pre-compile across several
  /// transactions (§IV, §V-A).
  void accept_verified(const SignedQuorumHeader& signed_header);

  [[nodiscard]] std::optional<ConsensusState> consensus_at(Height h) const override;
  [[nodiscard]] Height latest_height() const override;
  [[nodiscard]] std::string client_type() const override { return "quorum"; }
  [[nodiscard]] std::string tracked_chain_id() const override { return chain_id_; }
  [[nodiscard]] Hash32 tracked_validator_set_hash() const override {
    return validators_.hash();
  }

  [[nodiscard]] const ValidatorSet& validators() const noexcept { return validators_; }
  [[nodiscard]] const std::string& chain_id() const noexcept { return chain_id_; }

  /// Verifies quorum signatures over a header against `validators`.
  /// Returns the verified stake; throws IbcError on any bad signature
  /// or signer not in the set.
  [[nodiscard]] static std::uint64_t verify_signatures(const SignedQuorumHeader& sh,
                                                       const ValidatorSet& validators);
  /// Zero-copy variant over a parsed wire view; same checks, same
  /// error strings, signatures verified straight off the wire bytes.
  [[nodiscard]] static std::uint64_t verify_signatures(const SignedQuorumHeaderView& sh,
                                                       const ValidatorSet& validators);

  /// ICS-2 misbehaviour: two quorum-signed headers at the same height
  /// with different digests prove the counterparty forked.  A frozen
  /// client rejects all further updates and all proof verification
  /// (consensus_at returns nothing) until governance intervenes.
  void submit_misbehaviour(const SignedQuorumHeader& a, const SignedQuorumHeader& b);
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  void apply(const SignedQuorumHeader& sh);

  std::string chain_id_;
  ValidatorSet validators_;
  std::map<Height, ConsensusState> states_;
  Height latest_ = 0;
  bool frozen_ = false;
};

}  // namespace bmg::ibc
